package core

// Per-sweep progress reporting. Unlike PipelineObserver — a process-wide
// hook meant for gauges — progress callbacks are carried on the context,
// so concurrent sweeps (the service's async jobs) each see only their
// own events. The engines emit deltas at natural completion boundaries:
// one event per retired trace chunk on the streaming engines, one event
// per completed workload group (or config point) on the kernel engines.

import "context"

// ProgressEvent is one delta report from a running sweep. Every field is
// an increment since the previous event, never a cumulative total.
type ProgressEvent struct {
	// Records is the number of trace references ingested and simulated
	// (external-trace sweeps only).
	Records int64
	// Chunks is the number of trace chunks retired (external-trace
	// sweeps only; a chunk is at most cachesim.CancelCheckInterval refs).
	Chunks int64
	// Points is the number of sweep configuration points completed.
	Points int64
	// PassUnits is the number of simulation pass units completed
	// (inclusion stack groups plus batch fallback configurations).
	PassUnits int64
}

// ProgressFunc receives progress events. It is called from the sweep's
// own goroutines — potentially several concurrently — and must be cheap
// and safe for concurrent use.
type ProgressFunc func(ProgressEvent)

type progressCtxKey struct{}

// WithProgress returns a context that delivers the sweep's progress
// events to fn. Every *Context exploration entry point honors it.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	return context.WithValue(ctx, progressCtxKey{}, fn)
}

// progressFrom extracts the context's progress callback (nil when none).
func progressFrom(ctx context.Context) ProgressFunc {
	fn, _ := ctx.Value(progressCtxKey{}).(ProgressFunc)
	return fn
}

// ProgressFromContext returns the callback WithProgress installed on the
// context (nil when none). It is exported so sibling subsystems — the
// guided search layer emits one event per generation retirement — can
// report through the same channel the sweep engines use. Installing a
// nil callback with WithProgress silences any engine running under that
// context, which is how search keeps engine pass units out of its own
// generation-level accounting.
func ProgressFromContext(ctx context.Context) ProgressFunc { return progressFrom(ctx) }
