package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"memexplore/internal/extrace"
	"memexplore/internal/kernels"
)

// TestSampleRateOneIsExact: a sampling rate of exactly 1 (and 0) takes
// the exact path — Metrics bit-identical to an unsampled sweep, envelope
// fields absent.
func TestSampleRateOneIsExact(t *testing.T) {
	var din bytes.Buffer
	if _, err := extrace.WriteDin(&din, exportKernelTrace(t, kernels.MatAdd()).Reader()); err != nil {
		t.Fatal(err)
	}
	payload := din.Bytes()

	want, _, err := ExploreTrace(bytes.NewReader(payload), traceSweepOptions(), extrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	one := traceSweepOptions()
	one.SampleRate = 1
	one.SampleSeed = 99 // inert without sampling; must not change anything
	got, _, err := ExploreTrace(bytes.NewReader(payload), one, extrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d differs under SampleRate=1:\n  got : %+v\n  want: %+v", i, got[i], want[i])
		}
	}
	if want[0].SampleRate != 0 || want[0].SampledRecords != 0 || want[0].MissRateCI != 0 || want[0].SkippedShare != 0 {
		t.Errorf("exact sweep carries a sampling envelope: %+v", want[0])
	}
}

// TestSampledSweepDeterministic: the same rate and seed give identical
// results across reruns and worker counts — the filter runs on the
// coordinator, before the fan-out.
func TestSampledSweepDeterministic(t *testing.T) {
	const records = 50_000
	opts := traceSweepOptions()
	opts.SampleRate = 0.25
	opts.SampleSeed = 7

	var base []Metrics
	for run, workers := range []int{1, 4, 1, 4} {
		o := opts
		o.Workers = workers
		ms, st, err := ExploreTrace(&dinGenerator{records: records}, o, extrace.Options{})
		if err != nil {
			t.Fatalf("run %d (workers=%d): %v", run, workers, err)
		}
		if st.Records != records {
			t.Fatalf("run %d ingested %d records", run, st.Records)
		}
		if base == nil {
			base = ms
			continue
		}
		for i := range base {
			if ms[i] != base[i] {
				t.Fatalf("run %d (workers=%d) point %d differs:\n  got : %+v\n  want: %+v",
					run, workers, i, ms[i], base[i])
			}
		}
	}

	m := base[0]
	if m.SampleRate != 0.25 {
		t.Errorf("SampleRate = %g, want 0.25", m.SampleRate)
	}
	if m.SampledRecords <= 0 || m.SampledRecords >= records {
		t.Errorf("SampledRecords = %d, want a proper subset of %d", m.SampledRecords, records)
	}
	// A degenerate miss rate (0 or 1) has zero binomial width; any point
	// with a fractional rate must carry a positive interval.
	fractional := false
	for _, pm := range base {
		if pm.MissRate > 0 && pm.MissRate < 1 {
			fractional = true
			if pm.MissRateCI <= 0 {
				t.Errorf("%s: MissRateCI = %g at miss rate %.4f, want > 0", pm.Label(), pm.MissRateCI, pm.MissRate)
			}
		}
	}
	if !fractional {
		t.Error("no sweep point had a fractional miss rate; pick a richer test space")
	}
	// The rescaled access count estimates the full stream.
	if math.Abs(float64(m.Accesses)-records) > 1 {
		t.Errorf("rescaled accesses = %d, want ≈ %d", m.Accesses, records)
	}

	// A different seed draws a different spatial sample.
	reseeded := opts
	reseeded.SampleSeed = 8
	ms, _, err := ExploreTrace(&dinGenerator{records: records}, reseeded, extrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].SampledRecords == base[0].SampledRecords {
		t.Logf("seeds 7 and 8 kept the same record count (%d) — possible but unusual", ms[0].SampledRecords)
	}
}

// TestSampledSweepAccuracy: on a long strided stream the sampled miss
// rate lands near the exact one.
func TestSampledSweepAccuracy(t *testing.T) {
	const records = 200_000
	exact, _, err := ExploreTrace(&dinGenerator{records: records}, traceSweepOptions(), extrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := traceSweepOptions()
	opts.SampleRate = 0.5
	sampled, _, err := ExploreTrace(&dinGenerator{records: records}, opts, extrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		diff := math.Abs(sampled[i].MissRate - exact[i].MissRate)
		bound := math.Max(3*sampled[i].MissRateCI, 0.02)
		if diff > bound {
			t.Errorf("point %d (%s): sampled miss rate %.4f vs exact %.4f (diff %.4f > bound %.4f)",
				i, exact[i].Label(), sampled[i].MissRate, exact[i].MissRate, diff, bound)
		}
	}
}

// hotColdDin builds a din trace dominated by a small hot region, with
// rare excursions into a large cold one.
func hotColdDin(hotLoops, coldTouches int) []byte {
	var b bytes.Buffer
	cold := 0
	for l := 0; l < hotLoops; l++ {
		for a := 0; a < 512; a += 4 {
			fmt.Fprintf(&b, "0 %x\n", a)
		}
		if cold < coldTouches {
			fmt.Fprintf(&b, "0 %x\n", 1<<20+cold*64)
			cold++
		}
	}
	return b.Bytes()
}

// TestDominantPrefilter: with a hot/cold trace, the prefilter skips the
// cold excursions (counting them as hits), keeps the access count, and
// stays close to the exact miss rate.
func TestDominantPrefilter(t *testing.T) {
	payload := hotColdDin(400, 200)
	exact, st, err := ExploreTrace(bytes.NewReader(payload), traceSweepOptions(), extrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := traceSweepOptions()
	opts.DominantEps = 0.1
	got, _, err := ExploreTrace(bytes.NewReader(payload), opts, extrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := got[0]
	if m.SkippedShare <= 0 {
		t.Fatalf("SkippedShare = %g, want > 0 (cold excursions must be skipped); metrics %+v", m.SkippedShare, m)
	}
	if m.SampledRecords <= 0 || m.SampledRecords >= st.Records {
		t.Errorf("SampledRecords = %d, want a proper subset of %d", m.SampledRecords, st.Records)
	}
	if m.SampleRate != 0 || m.MissRateCI != 0 {
		t.Errorf("no sampling: rate/CI should be 0, got %g/%g", m.SampleRate, m.MissRateCI)
	}
	for i := range exact {
		if got[i].Accesses != exact[i].Accesses {
			t.Errorf("point %d: accesses %d != exact %d (cold skips count as hits)", i, got[i].Accesses, exact[i].Accesses)
		}
		diff := math.Abs(got[i].MissRate - exact[i].MissRate)
		if diff > opts.DominantEps+0.02 {
			t.Errorf("point %d (%s): prefiltered miss rate %.4f vs exact %.4f (diff %.4f)",
				i, exact[i].Label(), got[i].MissRate, exact[i].MissRate, diff)
		}
	}

	// Determinism across worker counts, with the prepass in the loop.
	wide := opts
	wide.Workers = 4
	again, _, err := ExploreTrace(bytes.NewReader(payload), wide, extrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if again[i] != got[i] {
			t.Fatalf("point %d differs across worker counts under DominantEps", i)
		}
	}
}

// TestDominantPrefilterNeedsSeeker: the two-pass prefilter refuses a
// stream it cannot rewind.
func TestDominantPrefilterNeedsSeeker(t *testing.T) {
	opts := traceSweepOptions()
	opts.DominantEps = 0.1
	var inv *ErrInvalidOptions
	_, _, err := ExploreTrace(&dinGenerator{records: 100}, opts, extrace.Options{})
	if !errors.As(err, &inv) || inv.Field != "dominant_eps" {
		t.Fatalf("err = %v, want ErrInvalidOptions{dominant_eps}", err)
	}
}

// TestSamplingCombinesWithDominant: both stages together still produce a
// deterministic, enveloped result.
func TestSamplingCombinesWithDominant(t *testing.T) {
	payload := hotColdDin(400, 200)
	opts := traceSweepOptions()
	opts.SampleRate = 0.5
	opts.DominantEps = 0.1
	a, _, err := ExploreTrace(bytes.NewReader(payload), opts, extrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ExploreTrace(bytes.NewReader(payload), opts, extrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d not deterministic with both filters", i)
		}
	}
	if a[0].SampleRate != 0.5 || a[0].SampledRecords == 0 {
		t.Errorf("envelope missing: %+v", a[0])
	}
}

// TestSamplingKeepsNothing: an absurdly small rate that filters out
// every record fails like an empty trace rather than scoring nothing.
func TestSamplingKeepsNothing(t *testing.T) {
	opts := traceSweepOptions()
	opts.SampleRate = 1e-300
	_, st, err := ExploreTrace(strings.NewReader("0 10\n0 14\n"), opts, extrace.Options{})
	if !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("err = %v, want ErrEmptyTrace", err)
	}
	if st.Records != 2 {
		t.Errorf("ingest stats records = %d, want 2 (the stream itself was read)", st.Records)
	}
}

// TestKernelSweepRejectsSampling: generated-trace sweeps are exact by
// construction and refuse the thinning knobs.
func TestKernelSweepRejectsSampling(t *testing.T) {
	n := kernels.MatAdd()
	var inv *ErrInvalidOptions

	opts := traceSweepOptions()
	opts.SampleRate = 0.5
	if _, err := Explore(n, opts); !errors.As(err, &inv) || inv.Field != "sample_rate" {
		t.Errorf("Explore: err = %v, want ErrInvalidOptions{sample_rate}", err)
	}
	opts = traceSweepOptions()
	opts.DominantEps = 0.1
	if _, err := Explore(n, opts); !errors.As(err, &inv) || inv.Field != "dominant_eps" {
		t.Errorf("Explore: err = %v, want ErrInvalidOptions{dominant_eps}", err)
	}
	opts = traceSweepOptions()
	opts.SampleRate = 0.5
	if _, err := ExplorePerPointContext(t.Context(), n, opts); !errors.As(err, &inv) || inv.Field != "sample_rate" {
		t.Errorf("ExplorePerPointContext: err = %v, want ErrInvalidOptions{sample_rate}", err)
	}
}

// TestSamplingOptionsValidateNormalize pins the range checks and the
// cache-key canonicalization.
func TestSamplingOptionsValidateNormalize(t *testing.T) {
	for _, tc := range []struct {
		field string
		mut   func(*Options)
	}{
		{"sample_rate", func(o *Options) { o.SampleRate = -0.1 }},
		{"sample_rate", func(o *Options) { o.SampleRate = 1.5 }},
		{"sample_rate", func(o *Options) { o.SampleRate = math.NaN() }},
		{"dominant_eps", func(o *Options) { o.DominantEps = -0.01 }},
		{"dominant_eps", func(o *Options) { o.DominantEps = 0.6 }},
		{"dominant_eps", func(o *Options) { o.DominantEps = math.NaN() }},
	} {
		opts := DefaultOptions()
		tc.mut(&opts)
		var inv *ErrInvalidOptions
		if err := opts.Validate(); !errors.As(err, &inv) || inv.Field != tc.field {
			t.Errorf("Validate(%s mutation) = %v, want ErrInvalidOptions{%s}", tc.field, err, tc.field)
		}
	}

	opts := DefaultOptions()
	opts.SampleRate = 1
	opts.SampleSeed = 42
	norm := opts.Normalize()
	if norm.SampleRate != 0 || norm.SampleSeed != 0 {
		t.Errorf("Normalize(rate=1, seed=42) kept rate=%g seed=%d, want 0/0", norm.SampleRate, norm.SampleSeed)
	}
	opts = DefaultOptions()
	opts.SampleRate = 0.5
	opts.SampleSeed = 42
	norm = opts.Normalize()
	if norm.SampleRate != 0.5 || norm.SampleSeed != 42 {
		t.Errorf("Normalize dropped active sampling options: %+v", norm)
	}
}
