package core

// This file is the core surface of distributed trace sweeps: one sweep's
// configuration points are partitioned at pass-unit granularity (whole
// inclusion groups, whole fallback caches — cachesim.ShardConfigs), each
// shard is executed as an ordinary shard-scoped sweep over the same trace
// bytes, and the per-shard Metrics are interleaved back into Space()
// order. Because every stream-thinning decision (sampling, dominant
// filtering, chunk skipping), the Gray-code bus measurement, and the
// rescaling shell are functions of (options, trace bytes) alone — never
// of which points the engine owns — the merged result is bit-identical
// to the single-process ExploreTraceReader run. The wire between a
// coordinator and a peer therefore carries only (options, shard index,
// shard count): both sides re-derive the identical partition.

import (
	"context"
	"fmt"
	"io"

	"memexplore/internal/cachesim"
	"memexplore/internal/extrace"
)

// TraceShardPlan partitions the trace sweep's configuration points into
// at most n cost-balanced shards at pass-unit granularity. Each returned
// slice holds ascending indices into opts.Space() (after the trace
// restriction of ExploreTraceReader); together the slices cover every
// point exactly once. Fewer than n shards are returned when the sweep
// has fewer pass units. The partition is deterministic for a given
// (opts, n), so a coordinator and its peers derive the same plan
// independently.
func TraceShardPlan(opts Options, n int) ([][]int, error) {
	opts, err := traceSpace(opts)
	if err != nil {
		return nil, err
	}
	points := opts.Space()
	if len(points) == 0 {
		return nil, invalidOptions("cache_sizes", "the options admit no legal (T, L, S) configuration")
	}
	cfgs := make([]cachesim.Config, len(points))
	for i, p := range points {
		cfgs[i] = opts.cacheConfig(p.CacheSize, p.LineSize, p.Assoc)
	}
	useInclusion := opts.Engine != EngineBatched && opts.inclusionEligible()
	shards, err := cachesim.ShardConfigs(cfgs, useInclusion, n)
	if err != nil {
		return nil, fmt.Errorf("core: planning distributed shards: %w", err)
	}
	return shards, nil
}

// ExploreTraceShard runs shard index of the count-way partition
// TraceShardPlan(opts, count) over the trace streamed from r, returning
// one Metrics per owned point — in the shard's own (ascending-point)
// order — plus the ingest statistics of the pass. The trace is read in
// full exactly as ExploreTraceReader reads it (same filters, same bus
// drive, same ingest accounting), so the returned Metrics are
// bit-identical to the corresponding entries of the full sweep and the
// IngestStats match the full run's for the same source kind.
func ExploreTraceShard(ctx context.Context, r io.Reader, opts Options, ing extrace.Options, index, count int) ([]Metrics, extrace.IngestStats, error) {
	plan, err := TraceShardPlan(opts, count)
	if err != nil {
		return nil, extrace.IngestStats{}, err
	}
	if index < 0 || index >= len(plan) {
		return nil, extrace.IngestStats{}, invalidOptions("shard", "shard index %d outside the %d-shard plan", index, len(plan))
	}
	return exploreTraceSubset(ctx, r, opts, ing, plan[index])
}

// MergeTraceShards interleaves per-shard Metrics — parts[i] being the
// result of ExploreTraceShard(..., i, count) — back into the full
// sweep's Space() order. It re-derives the partition from (opts, count)
// and verifies the parts' shapes against it, so a truncated or misrouted
// shard result fails loudly instead of silently misplacing points.
func MergeTraceShards(opts Options, count int, parts [][]Metrics) ([]Metrics, error) {
	plan, err := TraceShardPlan(opts, count)
	if err != nil {
		return nil, err
	}
	if len(parts) != len(plan) {
		return nil, fmt.Errorf("core: merging shards: got %d shard results, plan has %d shards", len(parts), len(plan))
	}
	total := 0
	for _, sh := range plan {
		total += len(sh)
	}
	out := make([]Metrics, total)
	for si, sh := range plan {
		if len(parts[si]) != len(sh) {
			return nil, fmt.Errorf("core: merging shards: shard %d returned %d metrics, owns %d points", si, len(parts[si]), len(sh))
		}
		for j, pi := range sh {
			out[pi] = parts[si][j]
		}
	}
	return out, nil
}
