package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"memexplore/internal/extrace"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
	"memexplore/internal/trace"
)

// traceSweepOptions is a small, fast (T, L, S) space shared by the
// streaming tests.
func traceSweepOptions() Options {
	opts := DefaultOptions()
	opts.CacheSizes = []int{32, 64, 128}
	opts.LineSizes = []int{4, 8}
	opts.Assocs = []int{1, 2}
	return opts
}

// exportKernelTrace regenerates exactly the trace the in-memory batched
// engine simulates for tiling 1 under a sequential layout.
func exportKernelTrace(t *testing.T, n *loopir.Nest) *trace.Trace {
	t.Helper()
	tiled, err := loopir.TileAll(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tiled.Generate(loopir.SequentialLayout(tiled, 0))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestExploreTraceRoundTripBitIdentical checks the central equivalence:
// for every paper kernel, exporting its trace to the din text format and
// sweeping the exported stream produces bit-identical Metrics to the
// in-memory kernel sweep over the same (T, L, S) space.
func TestExploreTraceRoundTripBitIdentical(t *testing.T) {
	opts := traceSweepOptions()
	kernelOpts := opts
	kernelOpts.Tilings = []int{1}
	kernelOpts.OptimizeLayout = false
	for _, n := range kernels.PaperBenchmarks() {
		n := n
		t.Run(n.Name, func(t *testing.T) {
			want, err := Explore(n, kernelOpts)
			if err != nil {
				t.Fatal(err)
			}
			tr := exportKernelTrace(t, n)
			var din bytes.Buffer
			if _, err := extrace.WriteDin(&din, tr.Reader()); err != nil {
				t.Fatal(err)
			}
			got, st, err := ExploreTrace(&din, opts, extrace.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if st.Records != int64(tr.Len()) {
				t.Fatalf("ingested %d records, trace has %d", st.Records, tr.Len())
			}
			if len(got) != len(want) {
				t.Fatalf("trace sweep has %d points, kernel sweep %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("point %d differs:\n  trace : %+v\n  kernel: %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestExploreTraceBinaryRoundTrip is the same equivalence through the
// binary format for one kernel.
func TestExploreTraceBinaryRoundTrip(t *testing.T) {
	opts := traceSweepOptions()
	kernelOpts := opts
	kernelOpts.Tilings = []int{1}
	kernelOpts.OptimizeLayout = false
	n := kernels.MatAdd()
	want, err := Explore(n, kernelOpts)
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if _, err := extrace.WriteBinary(&bin, exportKernelTrace(t, n).Reader()); err != nil {
		t.Fatal(err)
	}
	got, st, err := ExploreTrace(&bin, opts, extrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Format != "binary" {
		t.Fatalf("format = %q", st.Format)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d differs: %+v != %+v", i, got[i], want[i])
		}
	}
}

// dinGenerator synthesizes a din-format trace on the fly: an io.Reader
// that never holds more than one line, so tests can stream arbitrarily
// many records through the sweep without ever materializing a trace.
type dinGenerator struct {
	records int64 // total to emit; < 0 = endless
	emitted int64
	buf     []byte
}

func (g *dinGenerator) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(g.buf) == 0 {
			if g.records >= 0 && g.emitted >= g.records {
				if n == 0 {
					return 0, io.EOF
				}
				return n, nil
			}
			// A strided sweep over a 64 KiB window: bounded footprint,
			// unbounded length.
			addr := uint64(g.emitted*4) % (64 << 10)
			kind := byte('0' + g.emitted%2)
			g.buf = append(g.buf[:0], kind, ' ')
			g.buf = appendHex(g.buf, addr)
			g.buf = append(g.buf, " 4\n"...)
			g.emitted++
		}
		c := copy(p[n:], g.buf)
		g.buf = g.buf[c:]
		n += c
	}
	return n, nil
}

func appendHex(b []byte, v uint64) []byte {
	return fmt.Appendf(b, "%x", v)
}

// TestExploreTraceStreamsConstantMemory ingests two million records from
// a generator that never holds the trace and checks that the sweep's heap
// growth stays far below the materialized trace size (2M refs would be
// 32 MiB) — the constant-memory streaming contract.
func TestExploreTraceStreamsConstantMemory(t *testing.T) {
	const records = 2_000_000
	opts := traceSweepOptions()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	ms, st, err := ExploreTrace(&dinGenerator{records: records}, opts, extrace.Options{})
	runtime.GC()
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != records {
		t.Fatalf("ingested %d records, want %d", st.Records, records)
	}
	if len(ms) == 0 || ms[0].Accesses != records {
		t.Fatalf("sweep accesses = %d, want %d", ms[0].Accesses, records)
	}
	if st.FootprintBytes > 80<<10 || st.FootprintBytes == 0 {
		t.Errorf("footprint = %d bytes, want ~64 KiB window", st.FootprintBytes)
	}
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 8<<20 {
		t.Errorf("heap grew by %d bytes during a streaming sweep (> 8 MiB: trace materialized?)", grew)
	}
}

// cancelAfterReader cancels a context after the underlying reader has
// served n bytes, simulating a client disconnect mid-stream.
type cancelAfterReader struct {
	r      io.Reader
	n      int64
	served int64
	cancel context.CancelFunc
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.served += int64(n)
	if c.served >= c.n {
		c.cancel()
	}
	return n, err
}

func TestExploreTraceMidStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Endless generator: only cancellation can stop the sweep.
	src := &cancelAfterReader{r: &dinGenerator{records: -1}, n: 1 << 20, cancel: cancel}
	_, st, err := ExploreTraceReader(ctx, src, traceSweepOptions(), extrace.Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, should also wrap context.Canceled", err)
	}
	if st.Records == 0 {
		t.Error("partial ingest stats should report the records read before cancellation")
	}
}

func TestExploreTraceErrors(t *testing.T) {
	opts := traceSweepOptions()

	// Empty stream.
	if _, _, err := ExploreTrace(strings.NewReader(""), opts, extrace.Options{}); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("empty stream: err = %v, want ErrEmptyTrace", err)
	}
	// Comments only is still empty.
	if _, _, err := ExploreTrace(strings.NewReader("# nothing\n"), opts, extrace.Options{}); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("comment-only stream: err = %v, want ErrEmptyTrace", err)
	}

	// Malformed record surfaces the parse error with its line number.
	_, st, err := ExploreTrace(strings.NewReader("0 10\nbogus\n"), opts, extrace.Options{})
	var perr *extrace.ParseError
	if !errors.As(err, &perr) || perr.Line != 2 {
		t.Errorf("malformed stream: err = %v, want *extrace.ParseError at line 2", err)
	}
	if st.Records != 1 {
		t.Errorf("stats on failure report %d records, want the 1 read before the error", st.Records)
	}

	// Skip mode turns the same stream into a 1-record sweep.
	ms, st, err := ExploreTrace(strings.NewReader("0 10\nbogus\n"), opts, extrace.Options{SkipMalformed: true})
	if err != nil || st.Rejects != 1 || ms[0].Accesses != 1 {
		t.Errorf("skip mode: err=%v rejects=%d accesses=%d", err, st.Rejects, ms[0].Accesses)
	}

	// Record limit.
	_, _, err = ExploreTrace(&dinGenerator{records: 100}, opts, extrace.Options{MaxRecords: 10})
	if !errors.Is(err, extrace.ErrRecordLimit) {
		t.Errorf("record limit: err = %v, want ErrRecordLimit", err)
	}

	// Classification is a per-point feature; the streaming sweep rejects it.
	classify := opts
	classify.Classify = true
	var inv *ErrInvalidOptions
	if _, _, err := ExploreTrace(strings.NewReader("0 10\n"), classify, extrace.Options{}); !errors.As(err, &inv) || inv.Field != "classify" {
		t.Errorf("classify: err = %v, want ErrInvalidOptions{classify}", err)
	}

	// Empty config space.
	narrow := opts
	narrow.CacheSizes = []int{16}
	narrow.LineSizes = []int{16}
	if _, _, err := ExploreTrace(strings.NewReader("0 10\n"), narrow, extrace.Options{}); !errors.As(err, &inv) {
		t.Errorf("empty space: err = %v, want ErrInvalidOptions", err)
	}
}

// TestExploreTraceIgnoresTilingAndLayout: the caller's Tilings and
// OptimizeLayout cannot apply to a recorded trace and must not change
// the result.
func TestExploreTraceIgnoresTilingAndLayout(t *testing.T) {
	var din bytes.Buffer
	if _, err := extrace.WriteDin(&din, exportKernelTrace(t, kernels.MatAdd()).Reader()); err != nil {
		t.Fatal(err)
	}
	payload := din.Bytes()

	base := traceSweepOptions()
	want, _, err := ExploreTrace(bytes.NewReader(payload), base, extrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fancy := base
	fancy.Tilings = []int{1, 2, 4, 8}
	fancy.OptimizeLayout = true
	got, _, err := ExploreTrace(bytes.NewReader(payload), fancy, extrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("space size changed: %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d changed under tiling/layout options", i)
		}
	}
}
