package core

import (
	"math"
	"testing"

	"memexplore/internal/cachesim"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
)

func TestEnergyBreakdownConsistent(t *testing.T) {
	ms, err := Explore(kernels.Compress(), smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if math.Abs(m.Energy.Total()-m.EnergyNJ) > 1e-6 {
			t.Fatalf("%s: breakdown total %v != EnergyNJ %v", m.Label(), m.Energy.Total(), m.EnergyNJ)
		}
		if m.Energy.DecNJ < 0 || m.Energy.CellNJ <= 0 || m.Energy.IONJ < 0 || m.Energy.MainNJ < 0 {
			t.Fatalf("%s: degenerate breakdown %+v", m.Label(), m.Energy)
		}
		if m.Misses > 0 && m.Energy.MainNJ == 0 {
			t.Fatalf("%s: misses without main-memory energy", m.Label())
		}
	}
	// The mechanism behind Figures 1/4: cell energy dominates large
	// caches, main-memory energy dominates small ones.
	small, _ := Find(ms, ConfigPoint{CacheSize: 16, LineSize: 4, Assoc: 1, Tiling: 1})
	large, _ := Find(ms, ConfigPoint{CacheSize: 512, LineSize: 4, Assoc: 1, Tiling: 1})
	if small.Energy.MainNJ <= small.Energy.CellNJ {
		t.Errorf("small cache should be main-memory dominated: %+v", small.Energy)
	}
	if large.Energy.CellNJ <= large.Energy.MainNJ {
		t.Errorf("large cache should be cell-array dominated: %+v", large.Energy)
	}
}

func TestMinEDP(t *testing.T) {
	ms, err := Explore(kernels.Compress(), smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, ok := MinEDP(ms)
	if !ok {
		t.Fatal("no EDP optimum")
	}
	for _, o := range ms {
		if o.EDP() < m.EDP() {
			t.Fatalf("MinEDP missed %v < %v", o.EDP(), m.EDP())
		}
	}
	minE, _ := MinEnergy(ms)
	minC, _ := MinCycles(ms)
	if m.EDP() > minE.EDP() || m.EDP() > minC.EDP() {
		t.Error("EDP optimum must be at least as good as both single-objective optima")
	}
	if _, ok := MinEDP(nil); ok {
		t.Error("MinEDP(nil) should report !ok")
	}
}

func TestExploreParallelMatchesSequential(t *testing.T) {
	opts := smallOptions()
	seq, err := Explore(kernels.SOR(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3, 8} {
		par, err := ExploreParallel(kernels.SOR(), opts, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: result %d differs:\n par %+v\n seq %+v", workers, i, par[i], seq[i])
			}
		}
	}
}

func TestExploreParallelPropagatesErrors(t *testing.T) {
	opts := smallOptions()
	opts.LineSizes = nil
	if _, err := ExploreParallel(kernels.SOR(), opts, 4); err == nil {
		t.Error("invalid options should fail")
	}
	bad := &loopir.Nest{Name: "bad"}
	if _, err := ExploreParallel(bad, smallOptions(), 4); err == nil {
		t.Error("invalid nest should fail")
	}
}

func TestEvaluateTrace(t *testing.T) {
	n := kernels.Dequant()
	tr, err := n.Generate(loopir.SequentialLayout(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cachesim.DefaultConfig(64, 8, 1)
	opts := DefaultOptions()
	m, err := EvaluateTrace(tr, cfg, 1, opts.Energy, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accesses != uint64(tr.Len()) {
		t.Errorf("accesses %d, want %d", m.Accesses, tr.Len())
	}
	if m.EnergyNJ <= 0 || m.Cycles <= 0 {
		t.Errorf("degenerate metrics %+v", m)
	}
	// Must agree with the unoptimized Explorer path at the same point.
	o := DefaultOptions()
	o.OptimizeLayout = false
	e, err := NewExplorer(n, o)
	if err != nil {
		t.Fatal(err)
	}
	viaExplorer, err := e.Evaluate(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Misses != viaExplorer.Misses || math.Abs(m.EnergyNJ-viaExplorer.EnergyNJ) > 1e-9 {
		t.Errorf("EvaluateTrace %+v diverges from Explorer %+v", m, viaExplorer)
	}
	if _, err := EvaluateTrace(tr, cachesim.DefaultConfig(60, 8, 1), 1, opts.Energy, false); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestWarmTrace(t *testing.T) {
	ws := []WeightedKernel{
		{Nest: kernels.Dequant(), Trip: 4},
		{Nest: kernels.MatAdd(), Trip: 2},
	}
	tr, err := WarmTrace(ws, 2)
	if err != nil {
		t.Fatal(err)
	}
	dq, _ := kernels.Dequant().References()
	ma, _ := kernels.MatAdd().References()
	want := int(dq)*2 + int(ma)*1
	if tr.Len() != want {
		t.Errorf("warm trace length %d, want %d", tr.Len(), want)
	}
	// Regions must be disjoint: dequant uses [0, 2048), matadd above.
	lo, _, _ := tr.AddrRange()
	if lo >= 2048 {
		t.Errorf("first region should live below 2048, got min addr %d", lo)
	}
	seenHigh := false
	for i := 0; i < tr.Len(); i++ {
		if tr.At(i).Addr >= 2048 {
			seenHigh = true
			break
		}
	}
	if !seenHigh {
		t.Error("second kernel's region never appears")
	}

	// Errors.
	if _, err := WarmTrace(nil, 1); err == nil {
		t.Error("empty kernel list should fail")
	}
	if _, err := WarmTrace([]WeightedKernel{{Nest: kernels.MatAdd(), Trip: 0}}, 1); err == nil {
		t.Error("zero trip should fail")
	}
	// Scale below 1 is clamped.
	tr2, err := WarmTrace([]WeightedKernel{{Nest: kernels.MatAdd(), Trip: 1}}, 0)
	if err != nil || int64(tr2.Len()) != ma {
		t.Errorf("scale clamp failed: %d, %v", tr2.Len(), err)
	}
}

// The warm composition keeps cross-invocation reuse that cold composition
// discards: on a cache big enough to hold a kernel's working set, the
// warm miss rate must be well below the cold per-invocation miss rate.
func TestWarmVsColdReuse(t *testing.T) {
	ws := []WeightedKernel{{Nest: kernels.Dequant(), Trip: 8}}
	warm, err := WarmTrace(ws, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cachesim.DefaultConfig(4096, 16, 4) // holds both arrays (2 KiB)
	warmStats, err := cachesim.RunTrace(cfg, warm)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := kernels.Dequant().Generate(loopir.SequentialLayout(kernels.Dequant(), 0))
	if err != nil {
		t.Fatal(err)
	}
	coldStats, err := cachesim.RunTrace(cfg, cold)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.MissRate() >= coldStats.MissRate()/2 {
		t.Errorf("warm rate %v should be far below cold rate %v",
			warmStats.MissRate(), coldStats.MissRate())
	}
}

func TestLeakageAndWriteTrafficExtensions(t *testing.T) {
	n := kernels.Compress()
	tr, err := n.Generate(loopir.SequentialLayout(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cachesim.DefaultConfig(512, 8, 1)
	base := DefaultOptions().Energy

	plain, err := EvaluateTrace(tr, cfg, 1, base, false)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Energy.LeakNJ != 0 || plain.Energy.WriteNJ != 0 {
		t.Fatalf("paper defaults must have zero extension terms: %+v", plain.Energy)
	}

	leaky := base
	leaky.LeakNJPerCycleKB = 0.01
	withLeak, err := EvaluateTrace(tr, cfg, 1, leaky, false)
	if err != nil {
		t.Fatal(err)
	}
	wantLeak := 0.01 * 512.0 / 1024 * withLeak.Cycles
	if math.Abs(withLeak.Energy.LeakNJ-wantLeak) > 1e-6 {
		t.Errorf("leak = %v, want %v", withLeak.Energy.LeakNJ, wantLeak)
	}
	if withLeak.EnergyNJ <= plain.EnergyNJ {
		t.Error("leakage must increase total energy")
	}
	if math.Abs(withLeak.Energy.Total()-withLeak.EnergyNJ) > 1e-9 {
		t.Error("breakdown total out of sync")
	}

	wt := base
	wt.CountWriteTraffic = true
	withWrites, err := EvaluateTrace(tr, cfg, 1, wt, false)
	if err != nil {
		t.Fatal(err)
	}
	if withWrites.Energy.WriteNJ <= 0 {
		t.Error("compress writes back dirty lines; write traffic must cost energy")
	}
	if withWrites.EnergyNJ <= plain.EnergyNJ {
		t.Error("write traffic must increase total energy")
	}

	bad := base
	bad.LeakNJPerCycleKB = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative leakage should be rejected")
	}
}

// With leakage on, larger caches get penalized harder: the minimum-energy
// configuration cannot grow.
func TestLeakageShrinksOptimum(t *testing.T) {
	o := smallOptions()
	base, err := Explore(kernels.Compress(), o)
	if err != nil {
		t.Fatal(err)
	}
	baseBest, _ := MinEnergy(base)

	o.Energy.LeakNJPerCycleKB = 0.05
	leaky, err := Explore(kernels.Compress(), o)
	if err != nil {
		t.Fatal(err)
	}
	leakyBest, _ := MinEnergy(leaky)
	if leakyBest.CacheSize > baseBest.CacheSize {
		t.Errorf("leakage grew the optimum: %s -> %s", baseBest.Label(), leakyBest.Label())
	}
}

func TestOptionsPolicyKnobs(t *testing.T) {
	o := smallOptions()
	o.CacheSizes = []int{64}
	o.LineSizes = []int{8}
	o.Assocs = []int{2}
	o.Tilings = []int{1}
	o.OptimizeLayout = false

	base, err := Explore(kernels.SOR(), o)
	if err != nil {
		t.Fatal(err)
	}

	// FIFO must change the outcome on this reuse-heavy kernel.
	fifo := o
	fifo.Replacement = cachesim.FIFO
	fifoMs, err := Explore(kernels.SOR(), fifo)
	if err != nil {
		t.Fatal(err)
	}
	if fifoMs[0].Misses == base[0].Misses {
		t.Error("FIFO should differ from LRU on SOR")
	}

	// A victim buffer must not increase misses.
	vic := o
	vic.VictimLines = 4
	vicMs, err := Explore(kernels.SOR(), vic)
	if err != nil {
		t.Fatal(err)
	}
	if vicMs[0].Misses > base[0].Misses {
		t.Error("victim buffer increased misses")
	}

	// Write-through / no-allocate run cleanly and keep accounting sane.
	wt := o
	wt.WriteThrough = true
	wt.NoWriteAllocate = true
	wtMs, err := Explore(kernels.SOR(), wt)
	if err != nil {
		t.Fatal(err)
	}
	if wtMs[0].Hits+wtMs[0].Misses != wtMs[0].Accesses {
		t.Errorf("accounting broken: %+v", wtMs[0])
	}

	bad := o
	bad.VictimLines = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative victim size should be rejected")
	}
}
