package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/iotest"

	"memexplore/internal/cachesim"
	"memexplore/internal/extrace"
	"memexplore/internal/kernels"
)

// pipelineTestOptions is a small mixed space: inclusion groups (several
// associativities per geometry) plus fallback singletons.
func pipelineTestOptions() Options {
	opts := DefaultOptions()
	opts.CacheSizes = []int{32, 64, 128, 256}
	opts.LineSizes = []int{8, 16}
	opts.Assocs = []int{1, 2, 4}
	opts.Energy.CountWriteTraffic = true
	return opts
}

// TestPipelinedTraceSweepMatchesSequential pins the tentpole contract:
// the pipelined, group-parallel engine returns bit-identical metrics and
// ingest statistics to the exact sequential path, for worker counts
// below, at and far above the pass-unit count, across policies that
// exercise inclusion groups, pure batch fallback and per-cache RNG.
func TestPipelinedTraceSweepMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	tr := randomMixedTrace(rng, 40000, 8192) // several chunks (traceChunkRefs = 8192)
	var buf bytes.Buffer
	if _, err := extrace.WriteBinary(&buf, tr.Reader()); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Bytes()

	for _, repl := range []cachesim.Replacement{cachesim.LRU, cachesim.FIFO, cachesim.Random} {
		opts := pipelineTestOptions()
		opts.Replacement = repl
		opts.Workers = 1
		wantMS, wantST, err := ExploreTraceReader(context.Background(), bytes.NewReader(encoded), opts, extrace.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 64} {
			t.Run(fmt.Sprintf("repl=%v/workers=%d", repl, workers), func(t *testing.T) {
				opts := pipelineTestOptions()
				opts.Replacement = repl
				opts.Workers = workers
				ms, st, err := ExploreTraceReader(context.Background(), bytes.NewReader(encoded), opts, extrace.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(st, wantST) {
					t.Errorf("ingest stats diverge: %+v vs sequential %+v", st, wantST)
				}
				if !reflect.DeepEqual(ms, wantMS) {
					for i := range ms {
						if !reflect.DeepEqual(ms[i], wantMS[i]) {
							t.Fatalf("metrics[%d] diverges:\n parallel:   %+v\n sequential: %+v", i, ms[i], wantMS[i])
						}
					}
					t.Fatal("metrics diverge")
				}
			})
		}
	}
}

// TestPipelinedTraceSweepProperty is the randomized determinism check:
// random mixed-width traces, random sub-spaces, random policies and
// random worker counts (including workers ≫ pass units) must all match
// the sequential engine record-for-record. Run under -race by make check.
func TestPipelinedTraceSweepProperty(t *testing.T) {
	repls := []cachesim.Replacement{cachesim.LRU, cachesim.FIFO, cachesim.Random}
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomMixedTrace(rng, 500+rng.Intn(20000), 1<<(10+rng.Intn(4)))
		var buf bytes.Buffer
		if _, err := extrace.WriteBinary(&buf, tr.Reader()); err != nil {
			t.Fatal(err)
		}
		encoded := buf.Bytes()

		opts := DefaultOptions()
		opts.CacheSizes = [][]int{{32, 64}, {64, 128, 256}, {32, 128, 512}}[rng.Intn(3)]
		opts.LineSizes = [][]int{{8}, {8, 16}, {16, 32}}[rng.Intn(3)]
		opts.Assocs = [][]int{{1, 2}, {1, 2, 4}, {2, 8}}[rng.Intn(3)]
		opts.Replacement = repls[rng.Intn(len(repls))]
		opts.WriteThrough = rng.Intn(2) == 0
		workers := 2 + rng.Intn(31)

		opts.Workers = 1
		wantMS, wantST, err := ExploreTraceReader(context.Background(), bytes.NewReader(encoded), opts, extrace.Options{})
		if err != nil {
			t.Fatal(err)
		}
		opts.Workers = workers
		ms, st, err := ExploreTraceReader(context.Background(), bytes.NewReader(encoded), opts, extrace.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if st.Records != wantST.Records || !reflect.DeepEqual(st, wantST) {
			t.Errorf("seed %d workers %d: ingest stats diverge: %+v vs %+v", seed, workers, st, wantST)
		}
		if !reflect.DeepEqual(ms, wantMS) {
			t.Errorf("seed %d workers %d (repl=%v): metrics diverge from sequential", seed, workers, opts.Replacement)
		}
	}
}

// TestExploreTraceReaderReleasesOnError is the regression test for the
// pooled-array leak: sweep.Release must run on every path — read error,
// cancellation, empty trace — not only on success. FIFO replacement
// forces every configuration onto the pooled batch fallback, so each
// teardown must return at least len(Space()) line arrays to the pool.
func TestExploreTraceReaderReleasesOnError(t *testing.T) {
	opts := pipelineTestOptions()
	opts.Replacement = cachesim.FIFO // every config is a pooled fallback cache
	topts, err := traceSpace(opts)
	if err != nil {
		t.Fatal(err)
	}
	minPuts := uint64(len(topts.Space()))
	if minPuts == 0 {
		t.Fatal("test space is empty")
	}

	var valid bytes.Buffer
	if _, err := extrace.WriteBinary(&valid, randomMixedTrace(rand.New(rand.NewSource(5)), 300, 2048).Reader()); err != nil {
		t.Fatal(err)
	}
	errBoom := errors.New("boom")
	canceledCtx, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		name    string
		ctx     context.Context
		body    io.Reader
		workers int
		wantErr error
	}{
		{"read error sequential", context.Background(),
			io.MultiReader(bytes.NewReader(valid.Bytes()), iotest.ErrReader(errBoom)), 1, errBoom},
		{"read error pipelined", context.Background(),
			io.MultiReader(bytes.NewReader(valid.Bytes()), iotest.ErrReader(errBoom)), 4, errBoom},
		{"canceled sequential", canceledCtx, bytes.NewReader(valid.Bytes()), 1, ErrCanceled},
		{"canceled pipelined", canceledCtx, bytes.NewReader(valid.Bytes()), 4, ErrCanceled},
		{"empty trace", context.Background(), bytes.NewReader(nil), 1, ErrEmptyTrace},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := opts
			opts.Workers = tc.workers
			before := cachesim.PoolPuts()
			_, _, err := ExploreTraceReader(tc.ctx, tc.body, opts, extrace.Options{})
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("error = %v, want %v", err, tc.wantErr)
			}
			if delta := cachesim.PoolPuts() - before; delta < minPuts {
				t.Errorf("only %d line arrays returned to the pool, want ≥ %d (Release skipped?)", delta, minPuts)
			}
		})
	}
}

// TestTraceSweepPlanShards pins the plan's shard report: the partition
// covers every pass unit, collapses to one shard for Workers=1, and
// never exceeds the worker count.
func TestTraceSweepPlanShards(t *testing.T) {
	opts := pipelineTestOptions()
	for _, workers := range []int{1, 2, 5, 100} {
		opts.Workers = workers
		plan, err := TraceSweepPlan(opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Shards) == 0 {
			t.Fatalf("workers=%d: plan reports no shards", workers)
		}
		if workers == 1 && len(plan.Shards) != 1 {
			t.Errorf("workers=1: plan reports %d shards", len(plan.Shards))
		}
		if len(plan.Shards) > workers {
			t.Errorf("workers=%d: plan reports %d shards", workers, len(plan.Shards))
		}
		total := 0
		for _, u := range plan.Shards {
			if u == 0 {
				t.Errorf("workers=%d: empty shard in %v", workers, plan.Shards)
			}
			total += u
		}
		if total != plan.PassUnits() {
			t.Errorf("workers=%d: shards %v cover %d units, plan has %d", workers, plan.Shards, total, plan.PassUnits())
		}
	}
}

// TestFanBudgets pins the spare-worker split: one worker per group
// minimum, surplus proportional to pass-unit counts, total preserved.
func TestFanBudgets(t *testing.T) {
	cases := []struct {
		units   []int
		workers int
		want    []int
	}{
		{[]int{10}, 8, []int{8}},
		{[]int{3, 1}, 2, []int{1, 1}},
		{[]int{3, 1}, 6, []int{4, 2}},
		{[]int{5, 5, 2}, 3, []int{1, 1, 1}},
		{[]int{0, 0}, 5, []int{1, 1}}, // degenerate: no units, base budgets only
	}
	for _, tc := range cases {
		got := fanBudgets(tc.units, tc.workers)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("fanBudgets(%v, %d) = %v, want %v", tc.units, tc.workers, got, tc.want)
		}
	}
	// Totals are preserved whenever workers ≥ groups.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(6)
		units := make([]int, n)
		for j := range units {
			units[j] = 1 + rng.Intn(20)
		}
		workers := n + rng.Intn(20)
		got := fanBudgets(units, workers)
		sum := 0
		for _, b := range got {
			sum += b
		}
		if sum != workers {
			t.Fatalf("fanBudgets(%v, %d) = %v sums to %d", units, workers, got, sum)
		}
	}
}

// TestSingleGroupFanoutMatchesSequential pins the in-memory fan-out: a
// sweep whose space collapses to ONE workload group (sequential layout,
// single tiling) used to serialize under any worker count; now the spare
// workers shard its pass units. Results must stay bit-identical.
func TestSingleGroupFanoutMatchesSequential(t *testing.T) {
	n := kernels.Compress()
	opts := pipelineTestOptions()
	opts.Tilings = []int{1}
	opts.OptimizeLayout = false // one workload group for the whole space
	if g := groupWorkloads(opts, opts.Space()); len(g) != 1 {
		t.Fatalf("test space has %d workload groups, want 1", len(g))
	}
	want, err := ExploreContext(context.Background(), n, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 33} {
		got, err := ExploreParallelContext(context.Background(), n, opts, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: single-group fan-out diverges from sequential", workers)
		}
	}
}
