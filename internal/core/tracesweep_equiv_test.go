package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"memexplore/internal/cachesim"
	"memexplore/internal/extrace"
	"memexplore/internal/trace"
)

// randomMixedTrace builds a trace with reads, writes and fetches of mixed
// access widths (including line-spanning references) over a span small
// enough to produce heavy reuse and evictions.
func randomMixedTrace(rng *rand.Rand, nrefs int, span uint64) *trace.Trace {
	tr := trace.New(nrefs)
	sizes := []uint8{0, 1, 2, 4, 8, 16}
	for i := 0; i < nrefs; i++ {
		kind := trace.Read
		switch rng.Intn(10) {
		case 0, 1, 2:
			kind = trace.Write
		case 3:
			kind = trace.Fetch
		}
		tr.Append(trace.Ref{
			Addr: uint64(rng.Int63n(int64(span))),
			Kind: kind,
			Size: sizes[rng.Intn(len(sizes))],
		})
	}
	return tr
}

// TestTraceSweepMatchesPerPointOracle streams a random read/write trace
// through the external-trace sweep — which routes eligible points through
// the inclusion engine and the rest through the batch fallback — and
// checks every point bit-identical to an independent per-configuration
// evaluation of the same trace, across replacement, write-policy and
// victim-buffer combinations. Write traffic is charged into the energy
// model so write-back accounting is observable.
func TestTraceSweepMatchesPerPointOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := randomMixedTrace(rng, 4000, 4096)
	var buf bytes.Buffer
	if _, err := extrace.WriteBinary(&buf, tr.Reader()); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Bytes()
	addBS := TraceAddBS(tr)

	base := DefaultOptions()
	base.CacheSizes = []int{32, 64, 128, 256}
	base.LineSizes = []int{8, 16}
	base.Assocs = []int{1, 2, 4}
	base.Energy.CountWriteTraffic = true

	for _, repl := range []cachesim.Replacement{cachesim.LRU, cachesim.FIFO, cachesim.Random} {
		for _, writeThrough := range []bool{false, true} {
			for _, victim := range []int{0, 2} {
				opts := base
				opts.Replacement = repl
				opts.WriteThrough = writeThrough
				opts.VictimLines = victim
				name := fmt.Sprintf("repl=%v/wt=%v/victim=%d", repl, writeThrough, victim)
				t.Run(name, func(t *testing.T) {
					ms, st, err := ExploreTraceReader(context.Background(), bytes.NewReader(encoded), opts, extrace.Options{})
					if err != nil {
						t.Fatal(err)
					}
					if st.Records != int64(tr.Len()) {
						t.Fatalf("ingested %d records, want %d", st.Records, tr.Len())
					}
					topts, err := traceSpace(opts)
					if err != nil {
						t.Fatal(err)
					}
					points := topts.Space()
					if len(ms) != len(points) {
						t.Fatalf("sweep returned %d metrics for %d points", len(ms), len(points))
					}
					for i, p := range points {
						cfg := topts.cacheConfig(p.CacheSize, p.LineSize, p.Assoc)
						want, err := EvaluateTraceMeasured(tr, addBS, cfg, p.Tiling, topts.Energy, false)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(ms[i], want) {
							t.Fatalf("point %d %+v diverges:\n sweep:  %+v\n oracle: %+v", i, p, ms[i], want)
						}
					}
				})
			}
		}
	}
}

// TestTraceSweepRejectsPerPointEngine pins the engine gate: a recorded
// stream is read once, so the per-point engine cannot serve it.
func TestTraceSweepRejectsPerPointEngine(t *testing.T) {
	opts := DefaultOptions()
	opts.Engine = EnginePerPoint
	var buf bytes.Buffer
	if _, err := extrace.WriteBinary(&buf, trace.Sequential(0, 64, 4).Reader()); err != nil {
		t.Fatal(err)
	}
	_, _, err := ExploreTraceReader(context.Background(), &buf, opts, extrace.Options{})
	var inv *ErrInvalidOptions
	if !errors.As(err, &inv) || inv.Field != "engine" {
		t.Fatalf("per-point trace sweep error = %v, want engine ErrInvalidOptions", err)
	}
	if _, err := TraceSweepPlan(opts); err == nil {
		t.Fatal("TraceSweepPlan accepted the per-point engine")
	}
}
