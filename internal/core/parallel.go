package core

import (
	"fmt"
	"runtime"
	"sync"

	"memexplore/internal/loopir"
)

// ExploreParallel is Explore with the sweep points distributed across
// worker goroutines. Results are identical to Explore (same points, same
// order); workers ≤ 0 uses GOMAXPROCS. Each worker owns a private
// Explorer, so a few traces are generated once per worker instead of once
// per sweep — a small, bounded duplication that buys linear scaling of
// the simulation work.
func ExploreParallel(n *loopir.Nest, opts Options, workers int) ([]Metrics, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	points := opts.Space()
	if workers == 1 || len(points) < 2*workers {
		return Explore(n, opts)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}

	out := make([]Metrics, len(points))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e, err := NewExplorer(n, opts)
			if err != nil {
				errs[w] = err
				return
			}
			// Contiguous blocks maximize per-worker trace-cache reuse:
			// adjacent sweep points share tiling and layout.
			lo := w * len(points) / workers
			hi := (w + 1) * len(points) / workers
			for i := lo; i < hi; i++ {
				p := points[i]
				m, err := e.Evaluate(opts.cacheConfig(p.CacheSize, p.LineSize, p.Assoc), p.Tiling)
				if err != nil {
					errs[w] = fmt.Errorf("core: evaluating %s/%v: %w", n.Name, p, err)
					return
				}
				out[i] = m
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
