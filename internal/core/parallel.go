package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"memexplore/internal/loopir"
)

// ExploreParallel is Explore with the sweep points distributed across
// worker goroutines. Results are identical to Explore (same points, same
// order); workers ≤ 0 uses GOMAXPROCS. It is ExploreParallelContext with
// a background context.
func ExploreParallel(n *loopir.Nest, opts Options, workers int) ([]Metrics, error) {
	return ExploreParallelContext(context.Background(), n, opts, workers)
}

// ExploreParallelContext is ExploreParallel with cancellation: every
// worker checks the context between workload groups (and the batch pass
// checks it every few thousand references), so a canceled or expired
// context stops the sweep early. The returned error then wraps both
// ErrCanceled and ctx.Err().
//
// Non-classified sweeps parallelize across workload groups on the
// batched engine, sharing one mutex-guarded trace cache, so every trace
// is generated exactly once per sweep and traversed once per group.
// Classified sweeps (Options.Classify) keep the per-point path below,
// where each worker owns a private Explorer — a small, bounded trace
// duplication that buys linear scaling of the classification work.
func ExploreParallelContext(ctx context.Context, n *loopir.Nest, opts Options, workers int) ([]Metrics, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if !opts.Classify && opts.Engine != EnginePerPoint {
		return exploreBatched(ctx, n, opts, workers)
	}
	points := opts.Space()
	if workers == 1 || len(points) < 2*workers {
		return ExploreContext(ctx, n, opts)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}

	out := make([]Metrics, len(points))
	errs := make([]error, workers)
	progress := progressFrom(ctx)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e, err := NewExplorer(n, opts)
			if err != nil {
				errs[w] = err
				return
			}
			// Contiguous blocks maximize per-worker trace-cache reuse:
			// adjacent sweep points share tiling and layout.
			lo := w * len(points) / workers
			hi := (w + 1) * len(points) / workers
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					errs[w] = canceled(err)
					return
				}
				p := points[i]
				m, err := e.Evaluate(opts.cacheConfig(p.CacheSize, p.LineSize, p.Assoc), p.Tiling)
				if err != nil {
					errs[w] = fmt.Errorf("core: evaluating %s/%v: %w", n.Name, p, err)
					return
				}
				out[i] = m
				if progress != nil {
					progress(ProgressEvent{Points: 1, PassUnits: 1})
				}
			}
		}(w)
	}
	wg.Wait()
	// Prefer a non-cancellation error if any worker hit one: it is the
	// more specific diagnosis.
	var cancelErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if isCanceled(err) {
			cancelErr = err
			continue
		}
		return nil, err
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	return out, nil
}
