package core

import (
	"math"
	"testing"

	"memexplore/internal/cachesim"
	"memexplore/internal/energy"
	"memexplore/internal/kernels"
)

func smallOptions() Options {
	o := DefaultOptions()
	o.CacheSizes = []int{16, 32, 64, 128, 256, 512}
	o.LineSizes = []int{4, 8, 16, 32, 64}
	o.Assocs = []int{1, 2}
	o.Tilings = []int{1, 4}
	return o
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	o := DefaultOptions()
	o.CacheSizes = nil
	if err := o.Validate(); err == nil {
		t.Error("empty cache sizes should fail")
	}
	o = DefaultOptions()
	o.LineSizes = []int{3}
	if err := o.Validate(); err == nil {
		t.Error("line size without cycle entry should fail")
	}
	o = DefaultOptions()
	o.Tilings = []int{0}
	if err := o.Validate(); err == nil {
		t.Error("tiling 0 should fail")
	}
	o = DefaultOptions()
	o.Energy = energy.Params{}
	if err := o.Validate(); err == nil {
		t.Error("zero energy params should fail")
	}
}

func TestSpaceConstraints(t *testing.T) {
	o := DefaultOptions()
	for _, p := range o.Space() {
		if p.LineSize >= p.CacheSize {
			t.Errorf("point %v violates L < T", p)
		}
		if p.Assoc > p.CacheSize/p.LineSize {
			t.Errorf("point %v violates S ≤ T/L", p)
		}
		if p.Tiling > p.CacheSize/p.LineSize {
			t.Errorf("point %v violates B ≤ T/L", p)
		}
	}
	// MaxOnChip bounds T.
	o.MaxOnChip = 64
	for _, p := range o.Space() {
		if p.CacheSize > 64 {
			t.Errorf("point %v violates T ≤ M", p)
		}
	}
	if len(o.Space()) == 0 {
		t.Error("bounded space should not be empty")
	}
}

func TestEvaluateCompressBasics(t *testing.T) {
	e, err := NewExplorer(kernels.Compress(), smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Evaluate(cachesim.DefaultConfig(64, 8, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accesses != 31*31*5 {
		t.Errorf("accesses = %d, want 4805", m.Accesses)
	}
	if m.MissRate <= 0 || m.MissRate >= 1 {
		t.Errorf("miss rate = %v out of (0,1)", m.MissRate)
	}
	if m.Cycles <= float64(m.Accesses) {
		t.Errorf("cycles %v should exceed one per access", m.Cycles)
	}
	if m.EnergyNJ <= 0 {
		t.Errorf("energy = %v", m.EnergyNJ)
	}
	if m.Label() != "C64L8S1B1" {
		t.Errorf("label = %q", m.Label())
	}
	if m.Config() != cachesim.DefaultConfig(64, 8, 1) {
		t.Errorf("Config() = %v", m.Config())
	}
	// Invalid configuration is rejected.
	if _, err := e.Evaluate(cachesim.DefaultConfig(60, 8, 1), 1); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestExploreDeterministicAndCached(t *testing.T) {
	o := smallOptions()
	a, err := Explore(kernels.Compress(), o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(kernels.Compress(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != len(o.Space()) {
		t.Fatalf("lengths: %d, %d, space %d", len(a), len(b), len(o.Space()))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic result at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// The paper's central observation: larger caches monotonically reduce the
// miss rate, but the minimum-energy configuration is NOT the largest
// cache — energy rises again once E_cell growth outweighs miss savings.
func TestEnergyOptimumIsInterior(t *testing.T) {
	ms, err := Explore(kernels.Compress(), smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	minE, ok := MinEnergy(ms)
	if !ok {
		t.Fatal("no metrics")
	}
	maxSize := 0
	for _, m := range ms {
		if m.CacheSize > maxSize {
			maxSize = m.CacheSize
		}
	}
	if minE.CacheSize == maxSize {
		t.Errorf("minimum-energy cache is the largest (%d bytes) — energy metric lost its bite", maxSize)
	}
	minC, ok := MinCycles(ms)
	if !ok {
		t.Fatal("no metrics")
	}
	if minC.EnergyNJ < minE.EnergyNJ {
		t.Error("MinEnergy did not find the energy minimum")
	}
	if minE.Cycles < minC.Cycles {
		t.Error("MinCycles did not find the cycle minimum")
	}
}

// §3's selection examples: a cycle bound forces a different (smaller)
// configuration than the unconstrained time optimum, and vice versa.
func TestBoundedSelection(t *testing.T) {
	ms, err := Explore(kernels.Compress(), smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	minC, _ := MinCycles(ms)
	minE, _ := MinEnergy(ms)

	// With a generous bound, the bounded queries reduce to unbounded.
	m, ok := MinEnergyUnderCycleBound(ms, math.Inf(1))
	if !ok || m != minE {
		t.Errorf("infinite cycle bound should give the global energy optimum")
	}
	m, ok = MinCyclesUnderEnergyBound(ms, math.Inf(1))
	if !ok || m != minC {
		t.Errorf("infinite energy bound should give the global cycle optimum")
	}

	// A bound between the optima forces a compromise.
	bound := (minC.Cycles + minE.Cycles) / 2
	if minE.Cycles > bound {
		m, ok = MinEnergyUnderCycleBound(ms, bound)
		if !ok {
			t.Fatal("no configuration under midway cycle bound")
		}
		if m.Cycles > bound {
			t.Errorf("selected config violates the bound: %v > %v", m.Cycles, bound)
		}
		if m.EnergyNJ < minE.EnergyNJ {
			t.Error("bounded optimum cannot beat the unbounded one")
		}
	}

	// An impossible bound yields no result.
	if _, ok := MinEnergyUnderCycleBound(ms, 1); ok {
		t.Error("bound of 1 cycle should be unsatisfiable")
	}
	if _, ok := MinCyclesUnderEnergyBound(ms, 0.001); ok {
		t.Error("bound of 0.001 nJ should be unsatisfiable")
	}
}

func TestMinSizeUnderBounds(t *testing.T) {
	ms, err := Explore(kernels.Compress(), smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, ok := MinSizeUnderBounds(ms, math.Inf(1), math.Inf(1))
	if !ok {
		t.Fatal("unbounded query must succeed")
	}
	if m.CacheSize != 16 {
		t.Errorf("smallest cache = %d, want 16", m.CacheSize)
	}
	if _, ok := MinSizeUnderBounds(ms, 1, 1); ok {
		t.Error("impossible bounds should fail")
	}
}

func TestParetoFrontier(t *testing.T) {
	ms, err := Explore(kernels.Compress(), smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFrontier(ms)
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(front); i++ {
		if front[i].Cycles <= front[i-1].Cycles {
			t.Errorf("frontier not increasing in cycles at %d", i)
		}
		if front[i].EnergyNJ >= front[i-1].EnergyNJ {
			t.Errorf("frontier not decreasing in energy at %d", i)
		}
	}
	// Every frontier point must be undominated.
	for _, f := range front {
		for _, m := range ms {
			if m.Cycles < f.Cycles && m.EnergyNJ < f.EnergyNJ {
				t.Errorf("frontier point %v dominated by %v", f, m)
			}
		}
	}
	if ParetoFrontier(nil) != nil {
		t.Error("empty input should give nil frontier")
	}
}

func TestFind(t *testing.T) {
	ms, err := Explore(kernels.Compress(), smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := ConfigPoint{CacheSize: 64, LineSize: 8, Assoc: 1, Tiling: 1}
	m, ok := Find(ms, p)
	if !ok || m.CacheSize != 64 || m.LineSize != 8 {
		t.Errorf("Find failed: %+v %v", m, ok)
	}
	if _, ok := Find(ms, ConfigPoint{CacheSize: 4096, LineSize: 8, Assoc: 1, Tiling: 1}); ok {
		t.Error("absent point should not be found")
	}
}

func TestSelectionEmpty(t *testing.T) {
	if _, ok := MinEnergy(nil); ok {
		t.Error("MinEnergy(nil) should report !ok")
	}
	if _, ok := MinCycles(nil); ok {
		t.Error("MinCycles(nil) should report !ok")
	}
}

func TestClassifyOption(t *testing.T) {
	o := smallOptions()
	o.Classify = true
	o.OptimizeLayout = false
	o.CacheSizes = []int{64}
	o.LineSizes = []int{8}
	o.Assocs = []int{1}
	o.Tilings = []int{1}
	ms, err := Explore(kernels.Compress(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("want 1 point, got %d", len(ms))
	}
	// Unoptimized compress on a small cache has conflict misses to report.
	if ms[0].ConflictMisses == 0 {
		t.Log("note: no conflict misses at this geometry; classification plumbing still verified by type")
	}
}
