package loopir

import "testing"

// BenchmarkGenerate measures address-stream generation throughput.
func BenchmarkGenerate(b *testing.B) {
	n := transposeNest(64)
	lay := SequentialLayout(n, 0)
	refs, err := n.References()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(refs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Generate(lay); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse measures nest-text parsing.
func BenchmarkParse(b *testing.B) {
	src := transposeNest(64).String()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
