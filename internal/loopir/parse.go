package loopir

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a loop nest from its textual form — the same syntax
// Nest.String() prints, so Parse(n.String()) round-trips:
//
//	// compress
//	int8 a[32][32]
//	for i = 1, 31
//	  for j = 1, 31
//	    a[i][j], a[i - 1][j], a[i][j - 1], a[i - 1][j - 1], a[i][j] (w)
//
// Grammar, line by line (indentation and blank lines are ignored; '#'
// also starts a comment):
//
//	"// <name>"                          nest name (first non-blank line)
//	"int<B> <name>[d1][d2]…"             array with B-bit elements
//	"for <v> = <bound>, <bound>[, step N]"  loop level, outermost first
//	"<ref>, <ref>, …"                    the body (final line)
//
// A bound is an affine expression over outer loop variables, optionally
// "min(<expr>, <int>)". A ref is "<array>[<expr>]…" with an optional
// " (w)" marking a write. Expressions use integer constants, variables,
// "+", "-", and "N<var>" / "N*<var>" products.
func Parse(src string) (*Nest, error) {
	return ParseReader(strings.NewReader(src))
}

// ParseReader is Parse over an io.Reader.
func ParseReader(r io.Reader) (*Nest, error) {
	n := &Nest{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	sawBody := false
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "//"):
			if n.Name == "" {
				n.Name = strings.TrimSpace(strings.TrimPrefix(line, "//"))
			}
			continue
		case strings.HasPrefix(line, "int"):
			a, err := parseArray(line)
			if err != nil {
				return nil, fmt.Errorf("loopir: line %d: %w", lineno, err)
			}
			n.Arrays = append(n.Arrays, a)
		case strings.HasPrefix(line, "for "):
			if sawBody {
				return nil, fmt.Errorf("loopir: line %d: loop after body", lineno)
			}
			l, err := parseLoop(line)
			if err != nil {
				return nil, fmt.Errorf("loopir: line %d: %w", lineno, err)
			}
			n.Loops = append(n.Loops, l)
		default:
			if sawBody {
				return nil, fmt.Errorf("loopir: line %d: multiple body lines", lineno)
			}
			refs, err := parseBody(line)
			if err != nil {
				return nil, fmt.Errorf("loopir: line %d: %w", lineno, err)
			}
			n.Body = refs
			sawBody = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loopir: reading nest: %w", err)
	}
	if n.Name == "" {
		n.Name = "parsed"
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// parseArray parses "int8 a[32][32]".
func parseArray(line string) (Array, error) {
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return Array{}, fmt.Errorf("array declaration %q: want \"int<B> name[dims]\"", line)
	}
	bits, err := strconv.Atoi(strings.TrimPrefix(fields[0], "int"))
	if err != nil || bits <= 0 || bits%8 != 0 {
		return Array{}, fmt.Errorf("array declaration %q: bad element width %q", line, fields[0])
	}
	name, dims, err := parseIndexedName(fields[1])
	if err != nil {
		return Array{}, err
	}
	a := Array{Name: name, ElemBytes: bits / 8}
	for _, d := range dims {
		v, err := strconv.Atoi(strings.TrimSpace(d))
		if err != nil {
			return Array{}, fmt.Errorf("array %q: bad dimension %q", name, d)
		}
		a.Dims = append(a.Dims, v)
	}
	return a, nil
}

// parseIndexedName splits "a[32][32]" into "a" and {"32", "32"}.
func parseIndexedName(s string) (string, []string, error) {
	open := strings.IndexByte(s, '[')
	if open < 0 {
		return "", nil, fmt.Errorf("%q: missing dimensions", s)
	}
	name := s[:open]
	if name == "" {
		return "", nil, fmt.Errorf("%q: empty name", s)
	}
	var parts []string
	rest := s[open:]
	for rest != "" {
		if rest[0] != '[' {
			return "", nil, fmt.Errorf("%q: expected '[' at %q", s, rest)
		}
		depth := 0
		end := -1
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case '[':
				depth++
			case ']':
				depth--
				if depth == 0 {
					end = i
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, fmt.Errorf("%q: unbalanced brackets", s)
		}
		parts = append(parts, rest[1:end])
		rest = rest[end+1:]
	}
	return name, parts, nil
}

// parseLoop parses "for i = lo, hi" or "for i = lo, hi, step N".
func parseLoop(line string) (Loop, error) {
	body := strings.TrimSpace(strings.TrimPrefix(line, "for "))
	eq := strings.IndexByte(body, '=')
	if eq < 0 {
		return Loop{}, fmt.Errorf("loop %q: missing '='", line)
	}
	v := strings.TrimSpace(body[:eq])
	if v == "" {
		return Loop{}, fmt.Errorf("loop %q: missing variable", line)
	}
	rest := body[eq+1:]
	parts := splitTopLevel(rest, ',')
	if len(parts) < 2 || len(parts) > 3 {
		return Loop{}, fmt.Errorf("loop %q: want \"lo, hi[, step N]\"", line)
	}
	lo, err := parseBound(strings.TrimSpace(parts[0]))
	if err != nil {
		return Loop{}, fmt.Errorf("loop %q: lower bound: %w", line, err)
	}
	hi, err := parseBound(strings.TrimSpace(parts[1]))
	if err != nil {
		return Loop{}, fmt.Errorf("loop %q: upper bound: %w", line, err)
	}
	step := 1
	if len(parts) == 3 {
		s := strings.TrimSpace(parts[2])
		s = strings.TrimSpace(strings.TrimPrefix(s, "step"))
		step, err = strconv.Atoi(s)
		if err != nil {
			return Loop{}, fmt.Errorf("loop %q: bad step %q", line, s)
		}
	}
	return Loop{Var: v, Lo: lo, Hi: hi, Step: step}, nil
}

// splitTopLevel splits on sep outside parentheses/brackets.
func splitTopLevel(s string, sep byte) []string {
	var parts []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case sep:
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// parseBound parses an affine bound, optionally "min(expr, int)".
func parseBound(s string) (Bound, error) {
	if strings.HasPrefix(s, "min(") && strings.HasSuffix(s, ")") {
		inner := s[len("min(") : len(s)-1]
		parts := splitTopLevel(inner, ',')
		if len(parts) != 2 {
			return Bound{}, fmt.Errorf("min bound %q: want min(expr, cap)", s)
		}
		e, err := ParseExpr(strings.TrimSpace(parts[0]))
		if err != nil {
			return Bound{}, err
		}
		cap, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return Bound{}, fmt.Errorf("min bound %q: bad cap: %w", s, err)
		}
		return CappedBound(e, cap), nil
	}
	e, err := ParseExpr(s)
	if err != nil {
		return Bound{}, err
	}
	return ExprBound(e), nil
}

// parseBody parses "a[i][j], b[j][i] (w)".
func parseBody(line string) ([]Ref, error) {
	var refs []Ref
	for _, part := range splitTopLevel(line, ',') {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("body %q: empty reference", line)
		}
		write := false
		if strings.HasSuffix(part, "(w)") {
			write = true
			part = strings.TrimSpace(strings.TrimSuffix(part, "(w)"))
		}
		name, idxs, err := parseIndexedName(part)
		if err != nil {
			return nil, fmt.Errorf("body reference %q: %w", part, err)
		}
		r := Ref{Array: name, Write: write}
		for _, idx := range idxs {
			e, err := ParseExpr(strings.TrimSpace(idx))
			if err != nil {
				return nil, fmt.Errorf("body reference %q: %w", part, err)
			}
			r.Index = append(r.Index, e)
		}
		refs = append(refs, r)
	}
	return refs, nil
}

// ParseExpr parses an affine expression: terms of the form "3", "i",
// "2i", "2*i" joined by "+" and "-".
func ParseExpr(s string) (Expr, error) {
	e := Expr{Coef: map[string]int{}}
	s = strings.TrimSpace(s)
	if s == "" {
		return Expr{}, fmt.Errorf("empty expression")
	}
	i := 0
	sign := 1
	first := true
	for i < len(s) {
		// Skip spaces.
		for i < len(s) && s[i] == ' ' {
			i++
		}
		if i >= len(s) {
			break
		}
		// Sign.
		switch s[i] {
		case '+':
			if first {
				return Expr{}, fmt.Errorf("expression %q: leading '+'", s)
			}
			sign = 1
			i++
			continue
		case '-':
			if first {
				sign = -1
				i++
				first = false
				continue
			}
			sign = -1
			i++
			continue
		}
		first = false
		// Term: [number]["*"]ident | number.
		coef := 1
		hasNum := false
		start := i
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
		if i > start {
			v, err := strconv.Atoi(s[start:i])
			if err != nil {
				return Expr{}, fmt.Errorf("expression %q: bad number %q", s, s[start:i])
			}
			coef = v
			hasNum = true
		}
		expectIdent := false
		if i < len(s) && s[i] == '*' {
			if !hasNum {
				return Expr{}, fmt.Errorf("expression %q: '*' without a coefficient", s)
			}
			expectIdent = true
			i++
		}
		start = i
		for i < len(s) && (isIdentByte(s[i]) || (i > start && s[i] >= '0' && s[i] <= '9')) {
			i++
		}
		ident := s[start:i]
		switch {
		case ident == "" && expectIdent:
			return Expr{}, fmt.Errorf("expression %q: '*' without a variable", s)
		case ident == "" && hasNum:
			e.Const += sign * coef
		case ident != "":
			e.Coef[ident] += sign * coef
		default:
			return Expr{}, fmt.Errorf("expression %q: unexpected character %q at offset %d", s, s[i:i+1], i)
		}
		sign = 1
	}
	return e, nil
}

func isIdentByte(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}
