package loopir

import (
	"sort"
	"testing"
	"testing/quick"
)

// transposeNest is the paper's Example 3(a): for i=1,n for j=1,n
// a[i][j] = b[j][i], the kernel tiling is designed for.
func transposeNest(n int) *Nest {
	return &Nest{
		Name: "transpose",
		Arrays: []Array{
			{Name: "a", Dims: []int{n + 1, n + 1}},
			{Name: "b", Dims: []int{n + 1, n + 1}},
		},
		Loops: []Loop{ConstLoop("i", 1, n), ConstLoop("j", 1, n)},
		Body: []Ref{
			Read("b", Var("j"), Var("i")),
			Store("a", Var("i"), Var("j")),
		},
	}
}

// iterationSet executes the nest and collects the multiset of
// (ref-position, index-tuple) events as strings, order-insensitively.
func iterationSet(t *testing.T, n *Nest) []string {
	t.Helper()
	var events []string
	err := n.Visit(func(r Ref, idx []int) error {
		s := r.String()
		for _, v := range idx {
			s += "," + string(rune('0'+v%10)) + ":"
			s += itoa(v)
		}
		events = append(events, s)
		return nil
	})
	if err != nil {
		t.Fatalf("Visit(%s): %v", n.Name, err)
	}
	sort.Strings(events)
	return events
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func TestTilePreservesIterationSet(t *testing.T) {
	orig := transposeNest(10)
	for _, size := range []int{1, 2, 3, 4, 7, 16} {
		tiled, err := TileAll(orig, size)
		if err != nil {
			t.Fatalf("TileAll(%d): %v", size, err)
		}
		a := iterationSet(t, orig)
		b := iterationSet(t, tiled)
		if len(a) != len(b) {
			t.Fatalf("tile %d: event counts differ: %d vs %d", size, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("tile %d: event multisets differ at %d: %q vs %q", size, i, a[i], b[i])
			}
		}
	}
}

func TestTileChangesOrder(t *testing.T) {
	orig := transposeNest(8)
	tiled, err := TileAll(orig, 2)
	if err != nil {
		t.Fatal(err)
	}
	origTr, err := orig.Generate(SequentialLayout(orig, 0))
	if err != nil {
		t.Fatal(err)
	}
	tiledTr, err := tiled.Generate(SequentialLayout(orig, 0))
	if err != nil {
		t.Fatal(err)
	}
	if origTr.Len() != tiledTr.Len() {
		t.Fatalf("lengths differ: %d vs %d", origTr.Len(), tiledTr.Len())
	}
	same := true
	for i := 0; i < origTr.Len(); i++ {
		if origTr.At(i) != tiledTr.At(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("tiling with size 2 should reorder the reference stream")
	}
}

func TestTileDepth(t *testing.T) {
	tiled, err := TileAll(transposeNest(8), 4)
	if err != nil {
		t.Fatal(err)
	}
	if tiled.Depth() != 4 {
		t.Errorf("tiled depth = %d, want 4 (2 control + 2 element)", tiled.Depth())
	}
	// Partial-tile cap: hi of the element loop is min(t_i+3, 8).
	inner := tiled.Loops[2]
	if inner.Hi.Cap != 8 {
		t.Errorf("element loop cap = %d, want 8", inner.Hi.Cap)
	}
}

func TestTileSize1IsIdentity(t *testing.T) {
	orig := transposeNest(5)
	tiled, err := TileAll(orig, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tiled.Depth() != orig.Depth() {
		t.Errorf("B=1 should not add loops: depth %d", tiled.Depth())
	}
	a, _ := orig.Generate(SequentialLayout(orig, 0))
	b, _ := tiled.Generate(SequentialLayout(orig, 0))
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("B=1 changed the stream at ref %d", i)
		}
	}
}

func TestTileErrors(t *testing.T) {
	n := transposeNest(8)
	if _, err := Tile(n, 0, 0); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := Tile(n, 2); err == nil {
		t.Error("no levels should fail")
	}
	if _, err := Tile(n, 2, 5); err == nil {
		t.Error("out-of-range level should fail")
	}
	if _, err := Tile(n, 2, 0, 0); err == nil {
		t.Error("repeated level should fail")
	}
	stepped := transposeNest(8)
	stepped.Loops[0].Step = 2
	if _, err := Tile(stepped, 2, 0); err == nil {
		t.Error("non-unit step should fail")
	}
	// Tiling an already-tiled (affine-bound) loop is rejected.
	tiled, err := TileAll(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Tile(tiled, 2, 2); err == nil {
		t.Error("tiling a non-constant-bound loop should fail")
	}
}

func TestInterchange(t *testing.T) {
	n := transposeNest(6)
	sw, err := Interchange(n, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Loops[0].Var != "j" || sw.Loops[1].Var != "i" {
		t.Errorf("loops not swapped: %v, %v", sw.Loops[0].Var, sw.Loops[1].Var)
	}
	// Same iteration multiset.
	a := iterationSet(t, n)
	b := iterationSet(t, sw)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("interchange changed the iteration multiset")
		}
	}
	// Self-interchange is identity.
	id, err := Interchange(n, 1, 1)
	if err != nil || id.Depth() != 2 {
		t.Errorf("self interchange: %v", err)
	}
	// Out of range.
	if _, err := Interchange(n, 0, 9); err == nil {
		t.Error("out-of-range interchange should fail")
	}
	// Dependent bounds rejected.
	tiled, _ := TileAll(n, 2)
	if _, err := Interchange(tiled, 0, 2); err == nil {
		t.Error("interchanging control with dependent element loop should fail")
	}
}

// Property: for random rectangle sizes and tile sizes, the tiled nest
// issues exactly the same number of references as the original.
func TestQuickTileReferenceCount(t *testing.T) {
	f := func(nRaw, bRaw uint8) bool {
		n := int(nRaw%12) + 2
		b := int(bRaw%10) + 1
		orig := transposeNest(n)
		tiled, err := TileAll(orig, b)
		if err != nil {
			return false
		}
		r1, err1 := orig.References()
		r2, err2 := tiled.References()
		if err1 != nil || err2 != nil {
			return false
		}
		return r1 == r2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUnrollPreservesReferences(t *testing.T) {
	orig := transposeNest(8)
	for _, f := range []int{1, 2, 4, 8} {
		un, err := Unroll(orig, f)
		if err != nil {
			t.Fatalf("Unroll(%d): %v", f, err)
		}
		a, errA := orig.Generate(SequentialLayout(orig, 0))
		b, errB := un.Generate(SequentialLayout(orig, 0))
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if a.Len() != b.Len() {
			t.Fatalf("factor %d: lengths %d vs %d", f, a.Len(), b.Len())
		}
		// Unrolling reorders only within an unrolled group of the body;
		// for a single-statement body the stream is identical.
		for i := 0; i < a.Len(); i++ {
			if a.At(i) != b.At(i) {
				t.Fatalf("factor %d: ref %d differs", f, i)
			}
		}
		iters, err := un.Iterations()
		if err != nil {
			t.Fatal(err)
		}
		origIters, _ := orig.Iterations()
		if iters*int64(f) != origIters {
			t.Errorf("factor %d: iterations %d, want %d", f, iters, origIters/int64(f))
		}
	}
}

func TestUnrollErrors(t *testing.T) {
	n := transposeNest(8)
	if _, err := Unroll(n, 0); err == nil {
		t.Error("factor 0 should fail")
	}
	if _, err := Unroll(n, 3); err == nil {
		t.Error("non-dividing factor should fail (trip 8)")
	}
	tiled, _ := TileAll(n, 2)
	if _, err := Unroll(tiled, 2); err == nil {
		t.Error("non-constant inner bounds should fail")
	}
	bad := &Nest{Name: "bad"}
	if _, err := Unroll(bad, 2); err == nil {
		t.Error("invalid nest should fail")
	}
}

func TestUnrollBodyShift(t *testing.T) {
	n := &Nest{
		Name:   "u",
		Arrays: []Array{{Name: "a", Dims: []int{16}}},
		Loops:  []Loop{ConstLoop("i", 0, 15)},
		Body:   []Ref{Read("a", Var("i"))},
	}
	un, err := Unroll(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(un.Body) != 4 {
		t.Fatalf("body = %d refs", len(un.Body))
	}
	for k, r := range un.Body {
		if got := r.Index[0].Const; got != k {
			t.Errorf("replica %d const = %d, want %d", k, got, k)
		}
	}
	if un.Loops[0].Step != 4 {
		t.Errorf("step = %d, want 4", un.Loops[0].Step)
	}
}

func TestFuse(t *testing.T) {
	producer := &Nest{
		Name:   "produce",
		Arrays: []Array{{Name: "a", Dims: []int{32}}, {Name: "tmp", Dims: []int{32}}},
		Loops:  []Loop{ConstLoop("i", 0, 31)},
		Body:   []Ref{Read("a", Var("i")), Store("tmp", Var("i"))},
	}
	consumer := &Nest{
		Name:   "consume",
		Arrays: []Array{{Name: "tmp", Dims: []int{32}}, {Name: "out", Dims: []int{32}}},
		Loops:  []Loop{ConstLoop("i", 0, 31)},
		Body:   []Ref{Read("tmp", Var("i")), Store("out", Var("i"))},
	}
	fused, err := Fuse(producer, consumer)
	if err != nil {
		t.Fatal(err)
	}
	if fused.Name != "produce+consume" {
		t.Errorf("name = %q", fused.Name)
	}
	if len(fused.Arrays) != 3 {
		t.Errorf("arrays = %d, want 3 (tmp shared)", len(fused.Arrays))
	}
	if len(fused.Body) != 4 {
		t.Errorf("body = %d refs", len(fused.Body))
	}
	refs, err := fused.References()
	if err != nil || refs != 32*4 {
		t.Errorf("references = %d, %v", refs, err)
	}
	// Fusion turns the inter-nest tmp reuse into immediate reuse: in a
	// tiny cache the fused version hits on tmp, the sequential pair does
	// not.
	fusedTr, err := fused.Generate(SequentialLayout(fused, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Per iteration: a (miss amortized), tmp write, tmp read (hit!), out.
	// The fused tmp read must hit even in a 4-line cache.
	var hits int
	// Simple check: consecutive accesses to tmp at same address appear
	// adjacent in the trace.
	adjacent := 0
	for i := 1; i < fusedTr.Len(); i++ {
		if fusedTr.At(i).Addr == fusedTr.At(i-1).Addr {
			adjacent++
		}
	}
	if adjacent != 32 {
		t.Errorf("fused stream should repeat tmp addresses back-to-back: %d", adjacent)
	}
	_ = hits
}

func TestFuseErrors(t *testing.T) {
	base := &Nest{
		Name:   "a",
		Arrays: []Array{{Name: "x", Dims: []int{8}}},
		Loops:  []Loop{ConstLoop("i", 0, 7)},
		Body:   []Ref{Read("x", Var("i"))},
	}
	deeper := &Nest{
		Name:   "b",
		Arrays: []Array{{Name: "x", Dims: []int{8}}},
		Loops:  []Loop{ConstLoop("i", 0, 7), ConstLoop("j", 0, 7)},
		Body:   []Ref{Read("x", Var("i"))},
	}
	if _, err := Fuse(base, deeper); err == nil {
		t.Error("depth mismatch should fail")
	}
	otherVar := &Nest{
		Name:   "c",
		Arrays: []Array{{Name: "x", Dims: []int{8}}},
		Loops:  []Loop{ConstLoop("k", 0, 7)},
		Body:   []Ref{Read("x", Var("k"))},
	}
	if _, err := Fuse(base, otherVar); err == nil {
		t.Error("variable mismatch should fail")
	}
	conflicting := &Nest{
		Name:   "d",
		Arrays: []Array{{Name: "x", Dims: []int{16}}},
		Loops:  []Loop{ConstLoop("i", 0, 7)},
		Body:   []Ref{Read("x", Var("i"))},
	}
	if _, err := Fuse(base, conflicting); err == nil {
		t.Error("conflicting shared array should fail")
	}
	bad := &Nest{Name: "bad"}
	if _, err := Fuse(base, bad); err == nil {
		t.Error("invalid operand should fail")
	}
}
