package loopir

import "testing"

// FuzzParse checks that arbitrary input never panics the parser and that
// anything it accepts validates and re-parses from its own String().
func FuzzParse(f *testing.F) {
	f.Add("// k\nint8 a[8]\nfor i = 0, 7\na[i]\n")
	f.Add("int8 a[4][4]\nfor i = 0, 3\nfor j = 0, 3, step 2\na[i][j] (w)\n")
	f.Add("for i = 0, min(t + 3, 9)\n")
	f.Add("int8 a[0]\n")
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil {
			return
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("Parse accepted a nest that fails Validate: %v", err)
		}
		// Accepted nests must round-trip through their textual form.
		again, err := Parse(n.String())
		if err != nil {
			t.Fatalf("re-parsing String() failed: %v\n%s", err, n.String())
		}
		if again.Depth() != n.Depth() || len(again.Body) != len(n.Body) {
			t.Fatalf("round trip changed shape: %d/%d loops, %d/%d refs",
				again.Depth(), n.Depth(), len(again.Body), len(n.Body))
		}
	})
}

// FuzzParseExpr checks the expression parser never panics and accepted
// expressions round-trip through String().
func FuzzParseExpr(f *testing.F) {
	f.Add("i + 3")
	f.Add("-2j")
	f.Add("2*i - j + 1")
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err != nil {
			return
		}
		again, err := ParseExpr(e.String())
		if err != nil {
			t.Fatalf("re-parsing %q (from %q) failed: %v", e.String(), src, err)
		}
		if again.String() != e.String() {
			t.Fatalf("round trip changed expression: %q -> %q", e.String(), again.String())
		}
	})
}
