// Package loopir is a small intermediate representation for affine loop
// nests over arrays — the workload language of the reproduction. The
// paper's benchmarks (Compress, Matrix Multiplication, PDE, SOR, Dequant,
// the MPEG decoder kernels) are expressed as Nest values; the package
// executes a nest to produce the memory-reference trace the cache
// simulator consumes, and implements the loop transformations the paper
// explores (tiling §4.2, interchange).
//
// Index expressions are affine (a[H·i + c] in the paper's §3 notation), so
// the reuse analysis in internal/reuse can read the H rows and constant
// vectors straight off the IR.
package loopir

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is an affine expression over loop variables:
// sum(Coef[v]·v) + Const.
type Expr struct {
	// Coef maps loop-variable names to integer coefficients. Absent
	// variables have coefficient zero. A nil map is a constant expression.
	Coef map[string]int
	// Const is the additive constant.
	Const int
}

// Const returns a constant expression.
func Const(c int) Expr { return Expr{Const: c} }

// Var returns the expression 1·name + 0.
func Var(name string) Expr { return Expr{Coef: map[string]int{name: 1}} }

// Affine builds c + sum(coef_i·var_i) from alternating (name, coef) pairs.
// Affine("i", 1, "j", -2) with cst 3 means i - 2j + 3.
func Affine(cst int, pairs ...any) Expr {
	if len(pairs)%2 != 0 {
		panic("loopir.Affine: pairs must alternate name, coefficient")
	}
	e := Expr{Const: cst, Coef: map[string]int{}}
	for k := 0; k < len(pairs); k += 2 {
		name, ok := pairs[k].(string)
		if !ok {
			panic(fmt.Sprintf("loopir.Affine: pair %d: want variable name string, got %T", k/2, pairs[k]))
		}
		coef, ok := pairs[k+1].(int)
		if !ok {
			panic(fmt.Sprintf("loopir.Affine: pair %d: want int coefficient, got %T", k/2, pairs[k+1]))
		}
		e.Coef[name] += coef
	}
	return e
}

// Add returns e + o.
func (e Expr) Add(o Expr) Expr {
	r := Expr{Const: e.Const + o.Const, Coef: map[string]int{}}
	for v, c := range e.Coef {
		r.Coef[v] += c
	}
	for v, c := range o.Coef {
		r.Coef[v] += c
	}
	return r
}

// AddConst returns e + c.
func (e Expr) AddConst(c int) Expr {
	r := e.clone()
	r.Const += c
	return r
}

func (e Expr) clone() Expr {
	r := Expr{Const: e.Const}
	if e.Coef != nil {
		r.Coef = make(map[string]int, len(e.Coef))
		for v, c := range e.Coef {
			r.Coef[v] = c
		}
	}
	return r
}

// CoefOf returns the coefficient of the named variable (0 if absent).
func (e Expr) CoefOf(name string) int { return e.Coef[name] }

// Vars returns the variables with non-zero coefficients, sorted.
func (e Expr) Vars() []string {
	var vs []string
	for v, c := range e.Coef {
		if c != 0 {
			vs = append(vs, v)
		}
	}
	sort.Strings(vs)
	return vs
}

// IsConst reports whether the expression has no variable terms.
func (e Expr) IsConst() bool { return len(e.Vars()) == 0 }

// Eval evaluates the expression under the given environment. Unbound
// variables with non-zero coefficients are an error.
func (e Expr) Eval(env map[string]int) (int, error) {
	v := e.Const
	for name, c := range e.Coef {
		if c == 0 {
			continue
		}
		val, ok := env[name]
		if !ok {
			return 0, fmt.Errorf("loopir: unbound variable %q in expression %s", name, e)
		}
		v += c * val
	}
	return v, nil
}

// String renders the expression, e.g. "i - 2j + 3".
func (e Expr) String() string {
	var sb strings.Builder
	first := true
	for _, v := range e.Vars() {
		c := e.Coef[v]
		switch {
		case first && c == 1:
			sb.WriteString(v)
		case first && c == -1:
			sb.WriteString("-" + v)
		case first:
			fmt.Fprintf(&sb, "%d%s", c, v)
		case c == 1:
			sb.WriteString(" + " + v)
		case c == -1:
			sb.WriteString(" - " + v)
		case c > 0:
			fmt.Fprintf(&sb, " + %d%s", c, v)
		default:
			fmt.Fprintf(&sb, " - %d%s", -c, v)
		}
		first = false
	}
	switch {
	case first:
		fmt.Fprintf(&sb, "%d", e.Const)
	case e.Const > 0:
		fmt.Fprintf(&sb, " + %d", e.Const)
	case e.Const < 0:
		fmt.Fprintf(&sb, " - %d", -e.Const)
	}
	return sb.String()
}
