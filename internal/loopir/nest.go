package loopir

import (
	"fmt"
	"math"
)

// Array declares a named, rectangular, row-major array.
type Array struct {
	// Name is the array identifier, unique within a nest.
	Name string
	// Dims are the extents of each dimension, e.g. {32, 32} for a[32][32].
	Dims []int
	// ElemBytes is the element size in bytes. Zero means 1, matching the
	// paper's byte-granularity address arithmetic (a[32][32] occupies
	// addresses base..base+1023).
	ElemBytes int
}

// ElementBytes returns the element size, treating 0 as 1.
func (a Array) ElementBytes() int {
	if a.ElemBytes == 0 {
		return 1
	}
	return a.ElemBytes
}

// Elems returns the total number of elements.
func (a Array) Elems() int {
	n := 1
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// SizeBytes returns the total footprint in bytes.
func (a Array) SizeBytes() int { return a.Elems() * a.ElementBytes() }

// RowStrides returns, per dimension, the distance in elements between
// consecutive indices of that dimension (row-major).
func (a Array) RowStrides() []int {
	strides := make([]int, len(a.Dims))
	s := 1
	for d := len(a.Dims) - 1; d >= 0; d-- {
		strides[d] = s
		s *= a.Dims[d]
	}
	return strides
}

// NoCap is the Bound.Cap value meaning "no min() cap".
const NoCap = math.MaxInt

// Bound is one end of a loop range: an affine expression over outer loop
// variables, optionally capped by min(expr, Cap). The cap is what tiling
// introduces for the last partial tile ("min(ti+63, n)" in the paper's
// Example 3(b)).
type Bound struct {
	Expr Expr
	Cap  int
}

// ConstBound returns an uncapped constant bound.
func ConstBound(c int) Bound { return Bound{Expr: Const(c), Cap: NoCap} }

// ExprBound returns an uncapped affine bound.
func ExprBound(e Expr) Bound { return Bound{Expr: e, Cap: NoCap} }

// CappedBound returns min(expr, cap).
func CappedBound(e Expr, cap int) Bound { return Bound{Expr: e, Cap: cap} }

// Eval evaluates the bound under env.
func (b Bound) Eval(env map[string]int) (int, error) {
	v, err := b.Expr.Eval(env)
	if err != nil {
		return 0, err
	}
	if b.Cap != NoCap && b.Cap < v {
		v = b.Cap
	}
	return v, nil
}

// String renders the bound.
func (b Bound) String() string {
	if b.Cap != NoCap {
		return fmt.Sprintf("min(%s, %d)", b.Expr, b.Cap)
	}
	return b.Expr.String()
}

// Loop is one loop level: for Var := Lo; Var <= Hi; Var += Step. Bounds are
// inclusive, matching the paper's "for i=1,31" notation.
type Loop struct {
	Var  string
	Lo   Bound
	Hi   Bound
	Step int
}

// ConstLoop builds a simple constant-bounded loop with step 1.
func ConstLoop(v string, lo, hi int) Loop {
	return Loop{Var: v, Lo: ConstBound(lo), Hi: ConstBound(hi), Step: 1}
}

// Ref is a single array reference in the loop body, with one affine index
// expression per array dimension.
type Ref struct {
	Array string
	Index []Expr
	// Write marks a store; everything else is a load.
	Write bool
}

// Read builds a read reference.
func Read(array string, index ...Expr) Ref { return Ref{Array: array, Index: index} }

// Store builds a write reference.
func Store(array string, index ...Expr) Ref {
	return Ref{Array: array, Index: index, Write: true}
}

// String renders the reference, e.g. "a[i - 1][j]" or "a[i][j] (w)".
func (r Ref) String() string {
	s := r.Array
	for _, e := range r.Index {
		s += "[" + e.String() + "]"
	}
	if r.Write {
		s += " (w)"
	}
	return s
}

// Nest is a complete loop nest: declarations, loops outermost-first, and
// the body references executed once per innermost iteration, in order.
type Nest struct {
	Name   string
	Arrays []Array
	Loops  []Loop
	Body   []Ref
}

// Array returns the declaration of the named array.
func (n *Nest) Array(name string) (Array, bool) {
	for _, a := range n.Arrays {
		if a.Name == name {
			return a, true
		}
	}
	return Array{}, false
}

// Depth returns the number of loop levels.
func (n *Nest) Depth() int { return len(n.Loops) }

// Validate checks structural well-formedness: non-empty loops and body,
// unique array and loop-variable names, positive steps, declared arrays
// with matching dimensionality, bounds referring only to outer variables,
// and positive array extents.
func (n *Nest) Validate() error {
	if n.Name == "" {
		return fmt.Errorf("loopir: nest has no name")
	}
	if len(n.Loops) == 0 {
		return fmt.Errorf("loopir: nest %q has no loops", n.Name)
	}
	if len(n.Body) == 0 {
		return fmt.Errorf("loopir: nest %q has an empty body", n.Name)
	}
	arrays := map[string]Array{}
	for _, a := range n.Arrays {
		if a.Name == "" {
			return fmt.Errorf("loopir: nest %q declares an unnamed array", n.Name)
		}
		if _, dup := arrays[a.Name]; dup {
			return fmt.Errorf("loopir: nest %q declares array %q twice", n.Name, a.Name)
		}
		if len(a.Dims) == 0 {
			return fmt.Errorf("loopir: array %q has no dimensions", a.Name)
		}
		for d, ext := range a.Dims {
			if ext <= 0 {
				return fmt.Errorf("loopir: array %q dimension %d has extent %d", a.Name, d, ext)
			}
		}
		if a.ElemBytes < 0 {
			return fmt.Errorf("loopir: array %q has negative element size", a.Name)
		}
		arrays[a.Name] = a
	}
	outer := map[string]bool{}
	for li, l := range n.Loops {
		if l.Var == "" {
			return fmt.Errorf("loopir: nest %q loop %d has no variable", n.Name, li)
		}
		if outer[l.Var] {
			return fmt.Errorf("loopir: nest %q reuses loop variable %q", n.Name, l.Var)
		}
		if l.Step <= 0 {
			return fmt.Errorf("loopir: nest %q loop %q has non-positive step %d", n.Name, l.Var, l.Step)
		}
		for _, bv := range [][]string{l.Lo.Expr.Vars(), l.Hi.Expr.Vars()} {
			for _, v := range bv {
				if !outer[v] {
					return fmt.Errorf("loopir: nest %q loop %q bound uses %q, which is not an outer loop variable", n.Name, l.Var, v)
				}
			}
		}
		outer[l.Var] = true
	}
	for ri, r := range n.Body {
		a, ok := arrays[r.Array]
		if !ok {
			return fmt.Errorf("loopir: nest %q body ref %d uses undeclared array %q", n.Name, ri, r.Array)
		}
		if len(r.Index) != len(a.Dims) {
			return fmt.Errorf("loopir: nest %q ref %s has %d indices, array has %d dims",
				n.Name, r, len(r.Index), len(a.Dims))
		}
		for _, e := range r.Index {
			for _, v := range e.Vars() {
				if !outer[v] {
					return fmt.Errorf("loopir: nest %q ref %s uses unknown variable %q", n.Name, r, v)
				}
			}
		}
	}
	return nil
}
