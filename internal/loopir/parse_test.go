package loopir

import (
	"testing"
)

func TestParseExpr(t *testing.T) {
	cases := []struct {
		in   string
		env  map[string]int
		want int
	}{
		{"3", nil, 3},
		{"-3", nil, -3},
		{"i", map[string]int{"i": 5}, 5},
		{"-i", map[string]int{"i": 5}, -5},
		{"i + 3", map[string]int{"i": 5}, 8},
		{"i - 2j - 1", map[string]int{"i": 5, "j": 2}, 0},
		{"2i + j", map[string]int{"i": 3, "j": 1}, 7},
		{"2*i + 3*j", map[string]int{"i": 3, "j": 1}, 9},
		{"t_i + 7", map[string]int{"t_i": 10}, 17},
		{"0", nil, 0},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.in)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", c.in, err)
		}
		got, err := e.Eval(c.env)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseExpr(%q) evaluates to %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, bad := range []string{"", "+i", "i ? j", "((", "i +"} {
		if e, err := ParseExpr(bad); err == nil {
			// "i +" parses the 'i' then ends mid-sign: accept only if it
			// round-trips; the strict cases must fail.
			if bad != "i +" {
				t.Errorf("ParseExpr(%q) = %v, want error", bad, e)
			}
		}
	}
}

// Property: every registered kernel round-trips through its textual form.
func TestParseRoundTripsString(t *testing.T) {
	nests := []*Nest{
		compressNest(),
		transposeNest(8),
	}
	for _, n := range nests {
		got, err := Parse(n.String())
		if err != nil {
			t.Fatalf("%s: Parse(String()): %v", n.Name, err)
		}
		if got.Name != n.Name {
			t.Errorf("name %q, want %q", got.Name, n.Name)
		}
		a, err := n.Generate(SequentialLayout(n, 0))
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.Generate(SequentialLayout(got, 0))
		if err != nil {
			t.Fatalf("%s: generating parsed nest: %v", n.Name, err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("%s: trace lengths %d vs %d", n.Name, a.Len(), b.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if a.At(i) != b.At(i) {
				t.Fatalf("%s: ref %d differs: %+v vs %+v", n.Name, i, a.At(i), b.At(i))
			}
		}
	}
}

// Tiled nests use affine and min() bounds; they must round-trip too.
func TestParseRoundTripsTiled(t *testing.T) {
	tiled, err := TileAll(transposeNest(10), 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(tiled.String())
	if err != nil {
		t.Fatalf("Parse(tiled): %v\n%s", err, tiled.String())
	}
	a, _ := tiled.Generate(SequentialLayout(tiled, 0))
	b, err := got.Generate(SequentialLayout(got, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("ref %d differs", i)
		}
	}
}

func TestParseHandWritten(t *testing.T) {
	src := `
# a hand-written kernel
// smooth
int8 a[16][16]
int32 out[16][16]
for i = 1, 14
  for j = 1, 14, step 2
    a[i][j], a[i + 1][j], out[i][j] (w)
`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "smooth" {
		t.Errorf("name = %q", n.Name)
	}
	if len(n.Arrays) != 2 || n.Arrays[1].ElemBytes != 4 {
		t.Errorf("arrays = %+v", n.Arrays)
	}
	if n.Loops[1].Step != 2 {
		t.Errorf("step = %d", n.Loops[1].Step)
	}
	if !n.Body[2].Write {
		t.Error("third ref should be a write")
	}
	iters, err := n.Iterations()
	if err != nil {
		t.Fatal(err)
	}
	if iters != 14*7 {
		t.Errorf("iterations = %d, want 98", iters)
	}
}

func TestParseDefaultsName(t *testing.T) {
	n, err := Parse("int8 a[4]\nfor i = 0, 3\na[i]\n")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "parsed" {
		t.Errorf("default name = %q", n.Name)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"bad array", "int8 a\nfor i = 0, 3\na[i]\n"},
		{"bad width", "intx a[4]\nfor i = 0, 3\na[i]\n"},
		{"bad dim", "int8 a[x]\nfor i = 0, 3\na[i]\n"},
		{"no equals", "int8 a[4]\nfor i 0, 3\na[i]\n"},
		{"one bound", "int8 a[4]\nfor i = 0\na[i]\n"},
		{"bad step", "int8 a[4]\nfor i = 0, 3, step x\na[i]\n"},
		{"loop after body", "int8 a[4]\nfor i = 0, 3\na[i]\nfor j = 0, 1\n"},
		{"two bodies", "int8 a[4]\nfor i = 0, 3\na[i]\na[i]\n"},
		{"empty ref", "int8 a[4]\nfor i = 0, 3\na[i],\n"},
		{"unbalanced", "int8 a[4]\nfor i = 0, 3\na[i\n"},
		{"no body", "int8 a[4]\nfor i = 0, 3\n"},
		{"bad min", "int8 a[4]\nfor i = 0, min(3)\na[i]\n"},
		{"bad min cap", "int8 a[4]\nfor i = 0, min(3, x)\na[i]\n"},
		{"undeclared array", "int8 a[4]\nfor i = 0, 3\nb[i]\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: Parse accepted invalid input", c.name)
		}
	}
}
