package loopir

import (
	"strings"
	"testing"
)

// compressNest is the paper's Example 1 (§2.3): int a[32][32]; for i=1,31
// for j=1,31: a[i][j] = a[i][j] - a[i-1][j] - a[i][j-1] - 2*a[i-1][j-1].
func compressNest() *Nest {
	i, j := Var("i"), Var("j")
	im1, jm1 := Affine(-1, "i", 1), Affine(-1, "j", 1)
	return &Nest{
		Name:   "compress",
		Arrays: []Array{{Name: "a", Dims: []int{32, 32}}},
		Loops:  []Loop{ConstLoop("i", 1, 31), ConstLoop("j", 1, 31)},
		Body: []Ref{
			Read("a", i, j),
			Read("a", im1, j),
			Read("a", i, jm1),
			Read("a", im1, jm1),
			Store("a", i, j),
		},
	}
}

func TestArrayGeometry(t *testing.T) {
	a := Array{Name: "a", Dims: []int{6, 6}}
	if a.ElementBytes() != 1 {
		t.Errorf("default element size = %d", a.ElementBytes())
	}
	if a.Elems() != 36 || a.SizeBytes() != 36 {
		t.Errorf("elems=%d size=%d", a.Elems(), a.SizeBytes())
	}
	s := a.RowStrides()
	if s[0] != 6 || s[1] != 1 {
		t.Errorf("strides = %v", s)
	}
	b := Array{Name: "b", Dims: []int{2, 3, 4}, ElemBytes: 2}
	bs := b.RowStrides()
	if bs[0] != 12 || bs[1] != 4 || bs[2] != 1 {
		t.Errorf("3d strides = %v", bs)
	}
	if b.SizeBytes() != 48 {
		t.Errorf("3d size = %d", b.SizeBytes())
	}
}

func TestBounds(t *testing.T) {
	b := CappedBound(Affine(7, "t", 1), 31)
	if got, _ := b.Eval(map[string]int{"t": 10}); got != 17 {
		t.Errorf("uncapped eval = %d", got)
	}
	if got, _ := b.Eval(map[string]int{"t": 30}); got != 31 {
		t.Errorf("capped eval = %d, want 31", got)
	}
	if s := b.String(); s != "min(t + 7, 31)" {
		t.Errorf("String = %q", s)
	}
	if s := ConstBound(5).String(); s != "5" {
		t.Errorf("const bound String = %q", s)
	}
	if _, err := ExprBound(Var("x")).Eval(nil); err == nil {
		t.Error("unbound bound var should fail")
	}
}

func TestValidateAcceptsCompress(t *testing.T) {
	if err := compressNest().Validate(); err != nil {
		t.Fatalf("compress nest invalid: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Nest)
	}{
		{"no name", func(n *Nest) { n.Name = "" }},
		{"no loops", func(n *Nest) { n.Loops = nil }},
		{"empty body", func(n *Nest) { n.Body = nil }},
		{"dup array", func(n *Nest) { n.Arrays = append(n.Arrays, n.Arrays[0]) }},
		{"unnamed array", func(n *Nest) { n.Arrays[0].Name = "" }},
		{"no dims", func(n *Nest) { n.Arrays[0].Dims = nil }},
		{"zero extent", func(n *Nest) { n.Arrays[0].Dims[0] = 0 }},
		{"negative elem", func(n *Nest) { n.Arrays[0].ElemBytes = -1 }},
		{"unnamed loop", func(n *Nest) { n.Loops[0].Var = "" }},
		{"dup loop var", func(n *Nest) { n.Loops[1].Var = "i" }},
		{"zero step", func(n *Nest) { n.Loops[0].Step = 0 }},
		{"bound uses inner var", func(n *Nest) { n.Loops[0].Hi = ExprBound(Var("j")) }},
		{"bound uses unknown var", func(n *Nest) { n.Loops[1].Hi = ExprBound(Var("q")) }},
		{"undeclared array", func(n *Nest) { n.Body[0].Array = "zz" }},
		{"wrong arity", func(n *Nest) { n.Body[0].Index = n.Body[0].Index[:1] }},
		{"unknown ref var", func(n *Nest) { n.Body[0].Index[0] = Var("q") }},
	}
	for _, m := range mutations {
		n := compressNest()
		m.mutate(n)
		if err := n.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken nest", m.name)
		}
	}
}

func TestIterationsAndReferences(t *testing.T) {
	n := compressNest()
	iters, err := n.Iterations()
	if err != nil {
		t.Fatal(err)
	}
	if iters != 31*31 {
		t.Errorf("iterations = %d, want 961", iters)
	}
	refs, err := n.References()
	if err != nil {
		t.Fatal(err)
	}
	if refs != 31*31*5 {
		t.Errorf("references = %d, want 4805", refs)
	}
}

func TestGenerateCompressAddresses(t *testing.T) {
	n := compressNest()
	tr, err := n.Generate(SequentialLayout(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 31*31*5 {
		t.Fatalf("trace length %d", tr.Len())
	}
	// First iteration (i=1, j=1): a[1][1]=33, a[0][1]=1, a[1][0]=32,
	// a[0][0]=0, then write a[1][1]=33.
	want := []uint64{33, 1, 32, 0, 33}
	for k, w := range want {
		if got := tr.At(k).Addr; got != w {
			t.Errorf("ref %d addr = %d, want %d", k, got, w)
		}
	}
	if tr.At(4).Kind.String() != "write" {
		t.Errorf("ref 4 should be a write, got %v", tr.At(4).Kind)
	}
	if tr.At(0).Kind.String() != "read" {
		t.Errorf("ref 0 should be a read")
	}
	// Element size 1 → paper's byte addressing: last address must be
	// a[31][31] = 1023.
	_, hi, _ := tr.AddrRange()
	if hi != 1023 {
		t.Errorf("max address = %d, want 1023", hi)
	}
}

func TestGenerateRespectsLayoutAndElemSize(t *testing.T) {
	n := &Nest{
		Name:   "twoarr",
		Arrays: []Array{{Name: "a", Dims: []int{4}, ElemBytes: 4}, {Name: "b", Dims: []int{4}, ElemBytes: 4}},
		Loops:  []Loop{ConstLoop("i", 0, 3)},
		Body:   []Ref{Read("a", Var("i")), Read("b", Var("i"))},
	}
	layout := Layout{"a": {Base: 100}, "b": {Base: 200}}
	tr, err := n.Generate(layout)
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(0).Addr != 100 || tr.At(1).Addr != 200 {
		t.Errorf("base addresses wrong: %d, %d", tr.At(0).Addr, tr.At(1).Addr)
	}
	if tr.At(2).Addr != 104 {
		t.Errorf("a[1] addr = %d, want 104 (4-byte elements)", tr.At(2).Addr)
	}
	if got := tr.At(0).EffectiveSize(); got != 4 {
		t.Errorf("access size = %d, want 4", got)
	}
}

func TestGenerateMissingLayout(t *testing.T) {
	n := compressNest()
	if _, err := n.Generate(Layout{}); err == nil {
		t.Error("missing array in layout should fail")
	}
}

func TestGenerateOutOfBounds(t *testing.T) {
	n := compressNest()
	n.Loops[0] = ConstLoop("i", 0, 31) // a[i-1] underflows at i=0
	if _, err := n.Generate(SequentialLayout(n, 0)); err == nil {
		t.Error("out-of-bounds reference should fail")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSequentialLayout(t *testing.T) {
	n := &Nest{
		Name: "seq",
		Arrays: []Array{
			{Name: "a", Dims: []int{6, 6}},
			{Name: "b", Dims: []int{6, 6}},
			{Name: "c", Dims: []int{2}, ElemBytes: 4},
		},
		Loops: []Loop{ConstLoop("i", 0, 0)},
		Body:  []Ref{Read("c", Const(0))},
	}
	l := SequentialLayout(n, 1000)
	if l["a"].Base != 1000 || l["b"].Base != 1036 || l["c"].Base != 1072 {
		t.Errorf("layout = %v", l)
	}
}

func TestPaddedStrides(t *testing.T) {
	n := &Nest{
		Name:   "padded",
		Arrays: []Array{{Name: "a", Dims: []int{4, 8}}},
		Loops:  []Loop{ConstLoop("i", 0, 3), ConstLoop("j", 0, 7)},
		Body:   []Ref{Read("a", Var("i"), Var("j"))},
	}
	// Pad the row stride from 8 to 12 — the §4.1 mechanism.
	layout := Layout{"a": {Base: 0, StrideBytes: []int{12, 1}}}
	tr, err := n.Generate(layout)
	if err != nil {
		t.Fatal(err)
	}
	// a[1][0] must now sit at 12, not 8.
	if got := tr.At(8).Addr; got != 12 {
		t.Errorf("a[1][0] addr = %d, want 12", got)
	}
	if got := layout["a"].FootprintBytes(n.Arrays[0]); got != 3*12+7+1 {
		t.Errorf("footprint = %d, want 44", got)
	}
	if got := (Placement{}).FootprintBytes(n.Arrays[0]); got != 32 {
		t.Errorf("natural footprint = %d, want 32", got)
	}
	// Overlapping strides are rejected.
	bad := Layout{"a": {Base: 0, StrideBytes: []int{4, 1}}}
	if _, err := n.Generate(bad); err == nil {
		t.Error("overlapping row stride should fail")
	}
	// Wrong arity is rejected.
	if _, err := n.Generate(Layout{"a": {StrideBytes: []int{1}}}); err == nil {
		t.Error("wrong stride arity should fail")
	}
}

func TestNestString(t *testing.T) {
	s := compressNest().String()
	for _, want := range []string{"// compress", "int8 a[32][32]", "for i = 1, 31", "a[i - 1][j - 1]", "a[i][j] (w)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestVisitStopsOnError(t *testing.T) {
	n := compressNest()
	calls := 0
	err := n.Visit(func(Ref, []int) error {
		calls++
		if calls == 3 {
			return strings.NewReader("").UnreadByte() // any non-nil error
		}
		return nil
	})
	if err == nil {
		t.Fatal("Visit should propagate the error")
	}
	if calls != 3 {
		t.Errorf("Visit continued after error: %d calls", calls)
	}
}
