package loopir

import "fmt"

// Tile applies rectangular loop tiling (§4.2, the paper's Example 3(b)) to
// the given loop levels of the nest with the given tile size B. For each
// tiled level
//
//	for i = lo, hi
//
// a tile-controlling loop is hoisted outermost (in level order)
//
//	for ti = lo, hi, B
//	  ...
//	    for i = ti, min(ti+B-1, hi)
//
// Only levels with constant bounds can be tiled (the paper never tiles a
// triangular nest). Tiling with size ≤ 0 is an error; size 1 is legal and
// degenerates to the original iteration order with extra (empty) control
// structure, so callers usually special-case B == 1 themselves.
//
// The returned nest is new; the input is not modified.
func Tile(n *Nest, size int, levels ...int) (*Nest, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if size <= 0 {
		return nil, fmt.Errorf("loopir: tile size %d must be positive", size)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("loopir: Tile needs at least one loop level")
	}
	seen := map[int]bool{}
	for _, lv := range levels {
		if lv < 0 || lv >= len(n.Loops) {
			return nil, fmt.Errorf("loopir: tile level %d out of range [0,%d)", lv, len(n.Loops))
		}
		if seen[lv] {
			return nil, fmt.Errorf("loopir: tile level %d repeated", lv)
		}
		seen[lv] = true
		l := n.Loops[lv]
		if !l.Lo.Expr.IsConst() || !l.Hi.Expr.IsConst() || l.Lo.Cap != NoCap || l.Hi.Cap != NoCap {
			return nil, fmt.Errorf("loopir: cannot tile loop %q: bounds are not constant", l.Var)
		}
		if l.Step != 1 {
			return nil, fmt.Errorf("loopir: cannot tile loop %q with step %d", l.Var, l.Step)
		}
	}

	out := &Nest{
		Name:   fmt.Sprintf("%s/tile%d", n.Name, size),
		Arrays: append([]Array(nil), n.Arrays...),
		Body:   append([]Ref(nil), n.Body...),
	}
	// Tile-controlling loops, outermost, in level order.
	for _, lv := range levels {
		l := n.Loops[lv]
		out.Loops = append(out.Loops, Loop{
			Var:  "t_" + l.Var,
			Lo:   l.Lo,
			Hi:   l.Hi,
			Step: size,
		})
	}
	// Original loops in original order; tiled ones get tile-local bounds.
	for lv, l := range n.Loops {
		if seen[lv] {
			hi := l.Hi.Expr.Const // constant by the check above
			out.Loops = append(out.Loops, Loop{
				Var:  l.Var,
				Lo:   ExprBound(Var("t_" + l.Var)),
				Hi:   CappedBound(Affine(size-1, "t_"+l.Var, 1), hi),
				Step: 1,
			})
		} else {
			out.Loops = append(out.Loops, l)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("loopir: tiled nest invalid: %w", err)
	}
	return out, nil
}

// TileAll tiles every tileable loop level of the nest with the given
// size: levels with constant bounds and unit step. Size 1 — or a nest
// with no tileable level (e.g. an unrolled inner loop with step > 1) —
// returns a copy of the original nest unchanged.
func TileAll(n *Nest, size int) (*Nest, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	var levels []int
	if size > 1 {
		for i, l := range n.Loops {
			if l.Lo.Expr.IsConst() && l.Hi.Expr.IsConst() &&
				l.Lo.Cap == NoCap && l.Hi.Cap == NoCap && l.Step == 1 {
				levels = append(levels, i)
			}
		}
	}
	if len(levels) == 0 {
		cp := *n
		return &cp, nil
	}
	return Tile(n, size, levels...)
}

// Interchange swaps two loop levels. It is the caller's responsibility that
// the interchange is semantically legal for their kernel; structurally it
// is rejected if either loop's bounds reference the other's variable.
func Interchange(n *Nest, a, b int) (*Nest, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if a < 0 || a >= len(n.Loops) || b < 0 || b >= len(n.Loops) {
		return nil, fmt.Errorf("loopir: interchange levels (%d,%d) out of range", a, b)
	}
	if a == b {
		cp := *n
		return &cp, nil
	}
	la, lb := n.Loops[a], n.Loops[b]
	for _, v := range append(la.Lo.Expr.Vars(), la.Hi.Expr.Vars()...) {
		if v == lb.Var {
			return nil, fmt.Errorf("loopir: cannot interchange: loop %q bounds use %q", la.Var, lb.Var)
		}
	}
	for _, v := range append(lb.Lo.Expr.Vars(), lb.Hi.Expr.Vars()...) {
		if v == la.Var {
			return nil, fmt.Errorf("loopir: cannot interchange: loop %q bounds use %q", lb.Var, la.Var)
		}
	}
	out := &Nest{
		Name:   n.Name + "/interchanged",
		Arrays: append([]Array(nil), n.Arrays...),
		Loops:  append([]Loop(nil), n.Loops...),
		Body:   append([]Ref(nil), n.Body...),
	}
	out.Loops[a], out.Loops[b] = out.Loops[b], out.Loops[a]
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("loopir: interchanged nest invalid: %w", err)
	}
	return out, nil
}

// Unroll unrolls the innermost loop by the given factor: the body is
// replicated factor times with the innermost variable's occurrences
// shifted by 0, step, …, (factor−1)·step, and the loop's step multiplied
// by the factor. The innermost loop must have constant bounds and a trip
// count divisible by the factor (the transformation does not emit a
// remainder loop). Unrolling does not change the data-reference stream's
// multiset, but it shrinks the instruction-fetch stream — the I-cache
// extension's classic trade of code size for loop overhead.
func Unroll(n *Nest, factor int) (*Nest, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if factor <= 0 {
		return nil, fmt.Errorf("loopir: unroll factor %d must be positive", factor)
	}
	if factor == 1 {
		cp := *n
		return &cp, nil
	}
	inner := n.Loops[len(n.Loops)-1]
	if !inner.Lo.Expr.IsConst() || !inner.Hi.Expr.IsConst() ||
		inner.Lo.Cap != NoCap || inner.Hi.Cap != NoCap {
		return nil, fmt.Errorf("loopir: cannot unroll loop %q: bounds are not constant", inner.Var)
	}
	trip := (inner.Hi.Expr.Const-inner.Lo.Expr.Const)/inner.Step + 1
	if trip%factor != 0 {
		return nil, fmt.Errorf("loopir: trip count %d of loop %q not divisible by unroll factor %d",
			trip, inner.Var, factor)
	}
	out := &Nest{
		Name:   fmt.Sprintf("%s/unroll%d", n.Name, factor),
		Arrays: append([]Array(nil), n.Arrays...),
		Loops:  append([]Loop(nil), n.Loops...),
	}
	out.Loops[len(out.Loops)-1].Step = inner.Step * factor
	for k := 0; k < factor; k++ {
		shift := k * inner.Step
		for _, r := range n.Body {
			nr := Ref{Array: r.Array, Write: r.Write}
			for _, e := range r.Index {
				ne := e.clone()
				if c := ne.CoefOf(inner.Var); c != 0 {
					ne.Const += c * shift
				}
				nr.Index = append(nr.Index, ne)
			}
			out.Body = append(out.Body, nr)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("loopir: unrolled nest invalid: %w", err)
	}
	return out, nil
}

// Fuse merges two nests with identical loop structures into one nest that
// executes both bodies per iteration — classic loop fusion, which turns
// inter-nest reuse (the second nest re-reading what the first produced)
// into immediate temporal reuse. Arrays appearing in both nests must have
// identical declarations (they are shared); the loop variables, bounds
// and steps must match exactly.
func Fuse(a, b *Nest) (*Nest, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if len(a.Loops) != len(b.Loops) {
		return nil, fmt.Errorf("loopir: cannot fuse %q and %q: loop depths %d vs %d",
			a.Name, b.Name, len(a.Loops), len(b.Loops))
	}
	for i := range a.Loops {
		la, lb := a.Loops[i], b.Loops[i]
		if la.Var != lb.Var || la.Step != lb.Step ||
			la.Lo.String() != lb.Lo.String() || la.Hi.String() != lb.Hi.String() {
			return nil, fmt.Errorf("loopir: cannot fuse %q and %q: loop %d differs (%q vs %q)",
				a.Name, b.Name, i, la.Var, lb.Var)
		}
	}
	out := &Nest{
		Name:   a.Name + "+" + b.Name,
		Arrays: append([]Array(nil), a.Arrays...),
		Loops:  append([]Loop(nil), a.Loops...),
		Body:   append(append([]Ref(nil), a.Body...), b.Body...),
	}
	for _, arr := range b.Arrays {
		existing, ok := out.Array(arr.Name)
		if !ok {
			out.Arrays = append(out.Arrays, arr)
			continue
		}
		if existing.ElementBytes() != arr.ElementBytes() || len(existing.Dims) != len(arr.Dims) {
			return nil, fmt.Errorf("loopir: cannot fuse: array %q declared differently", arr.Name)
		}
		for d := range arr.Dims {
			if existing.Dims[d] != arr.Dims[d] {
				return nil, fmt.Errorf("loopir: cannot fuse: array %q dimensions differ", arr.Name)
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("loopir: fused nest invalid: %w", err)
	}
	return out, nil
}
