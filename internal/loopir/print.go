package loopir

import (
	"fmt"
	"strings"
)

// String renders the nest as pseudo-code in the paper's style:
//
//	int a[32][32]
//	for i = 1, 31
//	  for j = 1, 31
//	    a[i][j] (w), a[i][j], a[i - 1][j], ...
func (n *Nest) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s\n", n.Name)
	for _, a := range n.Arrays {
		fmt.Fprintf(&sb, "int%d %s", a.ElementBytes()*8, a.Name)
		for _, d := range a.Dims {
			fmt.Fprintf(&sb, "[%d]", d)
		}
		sb.WriteByte('\n')
	}
	indent := ""
	for _, l := range n.Loops {
		fmt.Fprintf(&sb, "%sfor %s = %s, %s", indent, l.Var, l.Lo, l.Hi)
		if l.Step != 1 {
			fmt.Fprintf(&sb, ", step %d", l.Step)
		}
		sb.WriteByte('\n')
		indent += "  "
	}
	refs := make([]string, len(n.Body))
	for i, r := range n.Body {
		refs[i] = r.String()
	}
	fmt.Fprintf(&sb, "%s%s\n", indent, strings.Join(refs, ", "))
	return sb.String()
}
