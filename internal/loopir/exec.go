package loopir

import (
	"fmt"

	"memexplore/internal/trace"
)

// Placement positions one array in off-chip memory: a base byte address
// and, optionally, padded per-dimension strides. The paper's §4.1
// assignment works exactly by padding — in its Compress example a[1][0] is
// moved from address 32 to 36, i.e. the row stride grows from 32 to 36
// bytes, leaving dead addresses that buy conflict freedom.
type Placement struct {
	// Base is the byte address of element [0][0]…[0].
	Base uint64
	// StrideBytes overrides the byte distance between consecutive indices
	// of each dimension. nil means the natural packed row-major strides
	// (RowStrides() · ElemBytes). If set, it must have one entry per
	// dimension and each stride must be at least the natural one.
	StrideBytes []int
}

// FootprintBytes returns how many bytes of memory the placement of array a
// spans, padding included.
func (p Placement) FootprintBytes(a Array) int {
	if p.StrideBytes == nil {
		return a.SizeBytes()
	}
	end := a.ElementBytes()
	for d, ext := range a.Dims {
		end += (ext - 1) * p.StrideBytes[d]
	}
	return end
}

// Layout assigns a Placement to every array of a nest. It is the off-chip
// data organization of the paper's §4.1: the exploration varies it (via
// internal/layout) to eliminate conflict misses.
type Layout map[string]Placement

// SequentialLayout packs the arrays contiguously in declaration order
// starting at the given base, with natural strides — the "unoptimized"
// layout of the paper's Figures 5 and 9.
func SequentialLayout(n *Nest, base uint64) Layout {
	l := Layout{}
	addr := base
	for _, a := range n.Arrays {
		l[a.Name] = Placement{Base: addr}
		addr += uint64(a.SizeBytes())
	}
	return l
}

// The executor compiles the nest's affine expressions once per run:
// loop variables become slots in a flat []int environment and every
// Expr becomes a sparse list of (slot, coefficient) terms, so the
// per-iteration work is a handful of integer multiply-adds with no map
// lookups. Validate guarantees every variable is a declared loop
// variable (and bounds only use outer ones), so evaluation cannot fail
// after it passes.

// cTerm is one coefficient·slot term of a compiled affine expression.
type cTerm struct {
	slot int
	coef int
}

// cExpr is a compiled Expr (or Bound): sum(coef·env[slot]) + cnst,
// capped by min(·, cap). Plain expressions use cap = NoCap.
type cExpr struct {
	terms []cTerm
	cnst  int
	cap   int
}

func (e *cExpr) eval(env []int) int {
	v := e.cnst
	for _, t := range e.terms {
		v += t.coef * env[t.slot]
	}
	if e.cap < v {
		v = e.cap
	}
	return v
}

// cLoop is a compiled loop level.
type cLoop struct {
	lo, hi cExpr
	step   int
}

// compileExec lowers the nest to the compiled executor form. The caller
// must have validated the nest.
func (n *Nest) compileExec() ([]cLoop, [][]cExpr) {
	slot := make(map[string]int, len(n.Loops))
	for d, l := range n.Loops {
		slot[l.Var] = d
	}
	comp := func(e Expr, cap int) cExpr {
		ce := cExpr{cnst: e.Const, cap: cap}
		for v, c := range e.Coef {
			if c != 0 {
				ce.terms = append(ce.terms, cTerm{slot: slot[v], coef: c})
			}
		}
		return ce
	}
	loops := make([]cLoop, len(n.Loops))
	for d, l := range n.Loops {
		loops[d] = cLoop{lo: comp(l.Lo.Expr, l.Lo.Cap), hi: comp(l.Hi.Expr, l.Hi.Cap), step: l.Step}
	}
	body := make([][]cExpr, len(n.Body))
	for bi, r := range n.Body {
		body[bi] = make([]cExpr, len(r.Index))
		for d, e := range r.Index {
			body[bi][d] = comp(e, NoCap)
		}
	}
	return loops, body
}

// visitIndexed executes the compiled nest and calls fn for every body
// reference of every innermost iteration with the body index and the
// evaluated per-dimension indices. The idx slice is reused between
// calls.
func (n *Nest) visitIndexed(fn func(bi int, idx []int) error) error {
	if err := n.Validate(); err != nil {
		return err
	}
	loops, body := n.compileExec()
	maxDims := 0
	for _, idx := range body {
		maxDims = max(maxDims, len(idx))
	}
	env := make([]int, len(loops))
	idxBuf := make([]int, maxDims)
	var run func(depth int) error
	run = func(depth int) error {
		if depth == len(loops) {
			for bi := range body {
				ce := body[bi]
				idx := idxBuf[:len(ce)]
				for d := range ce {
					idx[d] = ce[d].eval(env)
				}
				if err := fn(bi, idx); err != nil {
					return err
				}
			}
			return nil
		}
		l := &loops[depth]
		lo, hi := l.lo.eval(env), l.hi.eval(env)
		for v := lo; v <= hi; v += l.step {
			env[depth] = v
			if err := run(depth + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return run(0)
}

// Visit executes the nest and calls fn for every reference of every
// innermost iteration, passing the evaluated per-dimension indices.
// Execution stops at the first error.
func (n *Nest) Visit(fn func(r Ref, idx []int) error) error {
	return n.visitIndexed(func(bi int, idx []int) error {
		return fn(n.Body[bi], idx)
	})
}

// Iterations counts the innermost iterations the nest executes.
func (n *Nest) Iterations() (int64, error) {
	if err := n.Validate(); err != nil {
		return 0, err
	}
	// Walk the loop structure only — bounds may be affine, so the outer
	// levels must execute, but the innermost trip count is closed-form.
	loops, _ := n.compileExec()
	env := make([]int, len(loops))
	var iters int64
	var run func(depth int)
	run = func(depth int) {
		l := &loops[depth]
		lo, hi := l.lo.eval(env), l.hi.eval(env)
		if depth == len(loops)-1 {
			if hi >= lo {
				iters += int64((hi-lo)/l.step) + 1
			}
			return
		}
		for v := lo; v <= hi; v += l.step {
			env[depth] = v
			run(depth + 1)
		}
	}
	run(0)
	return iters, nil
}

// References counts the total memory references the nest issues — the
// trip_count of the paper's formulas under per-reference accounting.
func (n *Nest) References() (int64, error) {
	iters, err := n.Iterations()
	if err != nil {
		return 0, err
	}
	return iters * int64(len(n.Body)), nil
}

// Generate executes the nest under the given layout and returns the
// reference trace. Every reference is bounds-checked against its array
// declaration; an out-of-range index is an error (it means the kernel
// definition is wrong).
func (n *Nest) Generate(layout Layout) (*trace.Trace, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	type compiledArray struct {
		base    uint64
		dims    []int
		strides []int
		elem    int
	}
	arrays := make(map[string]compiledArray, len(n.Arrays))
	for _, a := range n.Arrays {
		p, ok := layout[a.Name]
		if !ok {
			return nil, fmt.Errorf("loopir: layout for nest %q is missing array %q", n.Name, a.Name)
		}
		strides := a.RowStrides()
		elem := a.ElementBytes()
		byteStrides := make([]int, len(strides))
		for d := range strides {
			byteStrides[d] = strides[d] * elem
		}
		if p.StrideBytes != nil {
			if len(p.StrideBytes) != len(a.Dims) {
				return nil, fmt.Errorf("loopir: placement of %q has %d strides, array has %d dims",
					a.Name, len(p.StrideBytes), len(a.Dims))
			}
			// Strides must not make distinct elements overlap: from the
			// innermost dimension outward, each stride must cover the
			// whole (possibly padded) extent of the next inner dimension.
			minStride := elem
			for d := len(a.Dims) - 1; d >= 0; d-- {
				s := p.StrideBytes[d]
				if s < minStride {
					return nil, fmt.Errorf("loopir: placement of %q: stride %d of dimension %d is below the minimum %d (elements would overlap)",
						a.Name, s, d, minStride)
				}
				byteStrides[d] = s
				minStride = s * a.Dims[d]
			}
		}
		arrays[a.Name] = compiledArray{
			base:    p.Base,
			dims:    a.Dims,
			strides: byteStrides,
			elem:    elem,
		}
	}
	// Resolve each body reference's array once, so the per-reference work
	// below is pure integer arithmetic.
	bodyArrays := make([]compiledArray, len(n.Body))
	bodyKinds := make([]trace.Kind, len(n.Body))
	for bi, r := range n.Body {
		bodyArrays[bi] = arrays[r.Array]
		bodyKinds[bi] = trace.Read
		if r.Write {
			bodyKinds[bi] = trace.Write
		}
	}
	refs, err := n.References()
	if err != nil {
		return nil, err
	}
	tr := trace.New(int(refs))
	err = n.visitIndexed(func(bi int, idx []int) error {
		ca := &bodyArrays[bi]
		off := 0
		for d, v := range idx {
			if v < 0 || v >= ca.dims[d] {
				return fmt.Errorf("loopir: nest %q ref %s: index %d out of range [0,%d) in dimension %d",
					n.Name, n.Body[bi], v, ca.dims[d], d)
			}
			off += v * ca.strides[d]
		}
		tr.Append(trace.Ref{
			Addr: ca.base + uint64(off),
			Kind: bodyKinds[bi],
			Size: uint8(ca.elem),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tr, nil
}
