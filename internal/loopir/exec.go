package loopir

import (
	"fmt"

	"memexplore/internal/trace"
)

// Placement positions one array in off-chip memory: a base byte address
// and, optionally, padded per-dimension strides. The paper's §4.1
// assignment works exactly by padding — in its Compress example a[1][0] is
// moved from address 32 to 36, i.e. the row stride grows from 32 to 36
// bytes, leaving dead addresses that buy conflict freedom.
type Placement struct {
	// Base is the byte address of element [0][0]…[0].
	Base uint64
	// StrideBytes overrides the byte distance between consecutive indices
	// of each dimension. nil means the natural packed row-major strides
	// (RowStrides() · ElemBytes). If set, it must have one entry per
	// dimension and each stride must be at least the natural one.
	StrideBytes []int
}

// FootprintBytes returns how many bytes of memory the placement of array a
// spans, padding included.
func (p Placement) FootprintBytes(a Array) int {
	if p.StrideBytes == nil {
		return a.SizeBytes()
	}
	end := a.ElementBytes()
	for d, ext := range a.Dims {
		end += (ext - 1) * p.StrideBytes[d]
	}
	return end
}

// Layout assigns a Placement to every array of a nest. It is the off-chip
// data organization of the paper's §4.1: the exploration varies it (via
// internal/layout) to eliminate conflict misses.
type Layout map[string]Placement

// SequentialLayout packs the arrays contiguously in declaration order
// starting at the given base, with natural strides — the "unoptimized"
// layout of the paper's Figures 5 and 9.
func SequentialLayout(n *Nest, base uint64) Layout {
	l := Layout{}
	addr := base
	for _, a := range n.Arrays {
		l[a.Name] = Placement{Base: addr}
		addr += uint64(a.SizeBytes())
	}
	return l
}

// Visit executes the nest and calls fn for every reference of every
// innermost iteration, passing the evaluated per-dimension indices.
// Execution stops at the first error.
func (n *Nest) Visit(fn func(r Ref, idx []int) error) error {
	if err := n.Validate(); err != nil {
		return err
	}
	env := make(map[string]int, len(n.Loops))
	idxBuf := make([]int, 8)
	var run func(depth int) error
	run = func(depth int) error {
		if depth == len(n.Loops) {
			for _, r := range n.Body {
				if cap(idxBuf) < len(r.Index) {
					idxBuf = make([]int, len(r.Index))
				}
				idx := idxBuf[:len(r.Index)]
				for d, e := range r.Index {
					v, err := e.Eval(env)
					if err != nil {
						return err
					}
					idx[d] = v
				}
				if err := fn(r, idx); err != nil {
					return err
				}
			}
			return nil
		}
		l := n.Loops[depth]
		lo, err := l.Lo.Eval(env)
		if err != nil {
			return err
		}
		hi, err := l.Hi.Eval(env)
		if err != nil {
			return err
		}
		for v := lo; v <= hi; v += l.Step {
			env[l.Var] = v
			if err := run(depth + 1); err != nil {
				return err
			}
		}
		delete(env, l.Var)
		return nil
	}
	return run(0)
}

// Iterations counts the innermost iterations the nest executes.
func (n *Nest) Iterations() (int64, error) {
	if err := n.Validate(); err != nil {
		return 0, err
	}
	// Count by visiting; bodies are cheap and bounds may be affine, so
	// a closed form is not generally available.
	var iters int64
	body := len(n.Body)
	err := n.Visit(func(Ref, []int) error { iters++; return nil })
	if err != nil {
		return 0, err
	}
	return iters / int64(body), nil
}

// References counts the total memory references the nest issues — the
// trip_count of the paper's formulas under per-reference accounting.
func (n *Nest) References() (int64, error) {
	iters, err := n.Iterations()
	if err != nil {
		return 0, err
	}
	return iters * int64(len(n.Body)), nil
}

// Generate executes the nest under the given layout and returns the
// reference trace. Every reference is bounds-checked against its array
// declaration; an out-of-range index is an error (it means the kernel
// definition is wrong).
func (n *Nest) Generate(layout Layout) (*trace.Trace, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	type compiledArray struct {
		base    uint64
		dims    []int
		strides []int
		elem    int
	}
	arrays := make(map[string]compiledArray, len(n.Arrays))
	for _, a := range n.Arrays {
		p, ok := layout[a.Name]
		if !ok {
			return nil, fmt.Errorf("loopir: layout for nest %q is missing array %q", n.Name, a.Name)
		}
		strides := a.RowStrides()
		elem := a.ElementBytes()
		byteStrides := make([]int, len(strides))
		for d := range strides {
			byteStrides[d] = strides[d] * elem
		}
		if p.StrideBytes != nil {
			if len(p.StrideBytes) != len(a.Dims) {
				return nil, fmt.Errorf("loopir: placement of %q has %d strides, array has %d dims",
					a.Name, len(p.StrideBytes), len(a.Dims))
			}
			// Strides must not make distinct elements overlap: from the
			// innermost dimension outward, each stride must cover the
			// whole (possibly padded) extent of the next inner dimension.
			minStride := elem
			for d := len(a.Dims) - 1; d >= 0; d-- {
				s := p.StrideBytes[d]
				if s < minStride {
					return nil, fmt.Errorf("loopir: placement of %q: stride %d of dimension %d is below the minimum %d (elements would overlap)",
						a.Name, s, d, minStride)
				}
				byteStrides[d] = s
				minStride = s * a.Dims[d]
			}
		}
		arrays[a.Name] = compiledArray{
			base:    p.Base,
			dims:    a.Dims,
			strides: byteStrides,
			elem:    elem,
		}
	}
	refs, err := n.References()
	if err != nil {
		return nil, err
	}
	tr := trace.New(int(refs))
	err = n.Visit(func(r Ref, idx []int) error {
		ca := arrays[r.Array]
		off := 0
		for d, v := range idx {
			if v < 0 || v >= ca.dims[d] {
				return fmt.Errorf("loopir: nest %q ref %s: index %d out of range [0,%d) in dimension %d",
					n.Name, r, v, ca.dims[d], d)
			}
			off += v * ca.strides[d]
		}
		kind := trace.Read
		if r.Write {
			kind = trace.Write
		}
		tr.Append(trace.Ref{
			Addr: ca.base + uint64(off),
			Kind: kind,
			Size: uint8(ca.elem),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tr, nil
}
