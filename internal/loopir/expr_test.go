package loopir

import (
	"testing"
	"testing/quick"
)

func TestExprEval(t *testing.T) {
	e := Affine(3, "i", 2, "j", -1)
	got, err := e.Eval(map[string]int{"i": 5, "j": 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3+10-4 {
		t.Errorf("Eval = %d, want 9", got)
	}
	if _, err := e.Eval(map[string]int{"i": 5}); err == nil {
		t.Error("unbound variable should fail")
	}
	// Zero-coefficient variables don't need bindings.
	z := Affine(1, "k", 0)
	if v, err := z.Eval(nil); err != nil || v != 1 {
		t.Errorf("zero-coef eval = %d, %v", v, err)
	}
}

func TestExprConstructors(t *testing.T) {
	if v, _ := Const(7).Eval(nil); v != 7 {
		t.Error("Const")
	}
	if v, _ := Var("i").Eval(map[string]int{"i": 3}); v != 3 {
		t.Error("Var")
	}
	if !Const(1).IsConst() {
		t.Error("Const should be IsConst")
	}
	if Var("i").IsConst() {
		t.Error("Var should not be IsConst")
	}
	if got := Var("i").CoefOf("i"); got != 1 {
		t.Errorf("CoefOf = %d", got)
	}
	if got := Var("i").CoefOf("j"); got != 0 {
		t.Errorf("CoefOf missing = %d", got)
	}
}

func TestAffinePanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("odd pairs", func() { Affine(0, "i") })
	assertPanics("non-string name", func() { Affine(0, 1, 2) })
	assertPanics("non-int coef", func() { Affine(0, "i", "j") })
}

func TestExprAdd(t *testing.T) {
	a := Affine(1, "i", 2)
	b := Affine(3, "i", -2, "j", 5)
	sum := a.Add(b)
	if got := sum.CoefOf("i"); got != 0 {
		t.Errorf("i coef = %d, want 0", got)
	}
	if got := sum.CoefOf("j"); got != 5 {
		t.Errorf("j coef = %d, want 5", got)
	}
	if sum.Const != 4 {
		t.Errorf("const = %d, want 4", sum.Const)
	}
	c := a.AddConst(10)
	if c.Const != 11 || a.Const != 1 {
		t.Errorf("AddConst should not mutate: a=%d c=%d", a.Const, c.Const)
	}
}

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Const(0), "0"},
		{Const(-3), "-3"},
		{Var("i"), "i"},
		{Affine(0, "i", -1), "-i"},
		{Affine(3, "i", 1), "i + 3"},
		{Affine(-1, "i", 1, "j", -2), "i - 2j - 1"},
		{Affine(0, "i", 2, "j", 1), "2i + j"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestExprVarsSorted(t *testing.T) {
	e := Affine(0, "z", 1, "a", 1, "m", 1)
	vs := e.Vars()
	want := []string{"a", "m", "z"}
	if len(vs) != 3 {
		t.Fatalf("Vars = %v", vs)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Errorf("Vars = %v, want %v", vs, want)
		}
	}
}

// Property: Add evaluates to the sum of evaluations.
func TestQuickExprAddDistributes(t *testing.T) {
	f := func(c1, c2, k1, k2 int8, i, j int8) bool {
		a := Affine(int(c1), "i", int(k1))
		b := Affine(int(c2), "j", int(k2))
		env := map[string]int{"i": int(i), "j": int(j)}
		va, err1 := a.Eval(env)
		vb, err2 := b.Eval(env)
		vs, err3 := a.Add(b).Eval(env)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return vs == va+vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
