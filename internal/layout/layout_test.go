package layout

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"memexplore/internal/cachesim"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
)

func TestOptimizeArgs(t *testing.T) {
	if _, err := Optimize(kernels.Compress(), 0, 8); err == nil {
		t.Error("line size 0 should fail")
	}
	if _, err := Optimize(kernels.Compress(), 4, 0); err == nil {
		t.Error("0 sets should fail")
	}
	bad := &loopir.Nest{Name: "bad"}
	if _, err := Optimize(bad, 4, 8); err == nil {
		t.Error("invalid nest should fail")
	}
}

// The paper's §4.1 Compress example: cache of 8 bytes with 2-byte lines
// (4 sets). The natural row stride of 32 puts class 2's leader a[1][0] in
// the same set as class 1's a[0][0]; the paper pads it to 36 so it lands
// two cache lines away.
func TestCompressPaperExample(t *testing.T) {
	n := kernels.Compress()
	plan, err := Optimize(n, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatalf("plan infeasible: %v", plan.Notes)
	}
	p := plan.Layout["a"]
	if p.StrideBytes == nil {
		t.Fatal("expected a padded row stride")
	}
	if p.StrideBytes[0] != 36 {
		t.Errorf("row stride = %d, want 36 (the paper's padded address)", p.StrideBytes[0])
	}
	if len(plan.Slots) != 2 {
		t.Fatalf("slots = %+v", plan.Slots)
	}
	// Two-line windows two lines apart.
	d := ((plan.Slots[1].StartSet-plan.Slots[0].StartSet)%4 + 4) % 4
	if d != 2 {
		t.Errorf("class separation = %d sets, want 2", d)
	}
	if v := plan.Verify(); len(v) != 0 {
		t.Errorf("verify found overlaps: %+v", v)
	}
}

// The §4.1 Matrix Addition example: three arrays with the same access
// pattern must land on three different cache lines. The paper's worked
// assignment stores a at 0–35, b from 38, c from 76 (line size 2, 3+
// lines). Our planner reproduces the set separation (the exact bases may
// differ by a whole number of cache periods).
func TestMatAddAssignment(t *testing.T) {
	n := kernels.MatAdd()
	plan, err := Optimize(n, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatalf("infeasible: %v", plan.Notes)
	}
	sets := map[int]bool{}
	for _, s := range plan.Slots {
		if sets[s.StartSet] {
			t.Errorf("two classes share start set %d: %+v", s.StartSet, plan.Slots)
		}
		sets[s.StartSet] = true
	}
	if v := plan.Verify(); len(v) != 0 {
		t.Errorf("verify found overlaps: %+v", v)
	}
	// Bases must be non-overlapping in memory and ordered.
	a, b, c := plan.Layout["a"], plan.Layout["b"], plan.Layout["c"]
	arrA, _ := n.Array("a")
	arrB, _ := n.Array("b")
	if b.Base < a.Base+uint64(a.FootprintBytes(arrA)) {
		t.Errorf("b (base %d) overlaps a (end %d)", b.Base, a.Base+uint64(a.FootprintBytes(arrA)))
	}
	if c.Base < b.Base+uint64(b.FootprintBytes(arrB)) {
		t.Errorf("c overlaps b")
	}
}

// The headline §4.1 claim (Figure 5): for a compatible kernel the
// optimized layout eliminates conflict misses — exactly when the cache can
// hold the live data, and down to a sliver (never worse than sequential)
// when live rows exceed the cache, where even a fully associative cache
// cannot avoid the evictions. Verify with the simulator across the paper's
// Figure 5 configurations.
func TestOptimizedLayoutEliminatesConflictMisses(t *testing.T) {
	cfgs := []cachesim.Config{
		cachesim.DefaultConfig(32, 4, 1),
		cachesim.DefaultConfig(64, 8, 1),
		cachesim.DefaultConfig(128, 16, 1),
	}
	for _, kern := range []*loopir.Nest{kernels.Compress(), kernels.MatAdd(), kernels.Dequant(), kernels.SOR(), kernels.PDE()} {
		for _, cfg := range cfgs {
			plan, err := Optimize(kern, cfg.LineBytes, cfg.NumSets())
			if err != nil {
				t.Fatalf("%s %v: %v", kern.Name, cfg, err)
			}
			if !plan.Feasible {
				// Small caches may simply not fit every class; skip those.
				continue
			}
			tr, err := kern.Generate(plan.Layout)
			if err != nil {
				t.Fatalf("%s: %v", kern.Name, err)
			}
			st, err := cachesim.RunTrace(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			seqTr, err := kern.Generate(loopir.SequentialLayout(kern, 0))
			if err != nil {
				t.Fatal(err)
			}
			seq, err := cachesim.RunTrace(cfg, seqTr)
			if err != nil {
				t.Fatal(err)
			}
			frac := float64(st.ConflictMisses) / float64(st.Accesses)
			if frac > 0.01 {
				t.Errorf("%s on %v: %d conflict misses (%.2f%%) with optimized layout (plan notes: %v)",
					kern.Name, cfg, st.ConflictMisses, 100*frac, plan.Notes)
			}
			if st.ConflictMisses > seq.ConflictMisses {
				t.Errorf("%s on %v: optimized conflicts %d exceed sequential %d",
					kern.Name, cfg, st.ConflictMisses, seq.ConflictMisses)
			}
		}
	}
}

// Kernels whose live working set fits the cache must reach exactly zero
// conflict misses under the optimized layout.
func TestOptimizedLayoutExactZeroConflicts(t *testing.T) {
	cases := []struct {
		kern *loopir.Nest
		cfg  cachesim.Config
	}{
		{kernels.Compress(), cachesim.DefaultConfig(32, 4, 1)},
		{kernels.Compress(), cachesim.DefaultConfig(64, 8, 1)},
		{kernels.Compress(), cachesim.DefaultConfig(128, 16, 1)},
		{kernels.MatAdd(), cachesim.DefaultConfig(32, 4, 1)},
		{kernels.Dequant(), cachesim.DefaultConfig(64, 8, 1)},
	}
	for _, c := range cases {
		plan, err := Optimize(c.kern, c.cfg.LineBytes, c.cfg.NumSets())
		if err != nil {
			t.Fatal(err)
		}
		tr, err := c.kern.Generate(plan.Layout)
		if err != nil {
			t.Fatal(err)
		}
		st, err := cachesim.RunTrace(c.cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if st.ConflictMisses != 0 {
			t.Errorf("%s on %v: %d conflict misses, want 0 (notes: %v)",
				c.kern.Name, c.cfg, st.ConflictMisses, plan.Notes)
		}
	}
}

// Figure 5's other half: the optimized layout must beat the sequential one
// on miss rate for Compress (where the sequential layout conflicts badly).
func TestOptimizedBeatsSequentialForCompress(t *testing.T) {
	n := kernels.Compress()
	for _, cfg := range []cachesim.Config{
		cachesim.DefaultConfig(32, 4, 1),
		cachesim.DefaultConfig(64, 8, 1),
		cachesim.DefaultConfig(128, 16, 1),
	} {
		plan, err := Optimize(n, cfg.LineBytes, cfg.NumSets())
		if err != nil {
			t.Fatal(err)
		}
		optTr, err := n.Generate(plan.Layout)
		if err != nil {
			t.Fatal(err)
		}
		seqTr, err := n.Generate(loopir.SequentialLayout(n, 0))
		if err != nil {
			t.Fatal(err)
		}
		opt, err := cachesim.RunTrace(cfg, optTr)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := cachesim.RunTrace(cfg, seqTr)
		if err != nil {
			t.Fatal(err)
		}
		if opt.MissRate() > seq.MissRate() {
			t.Errorf("%v: optimized miss rate %.4f worse than sequential %.4f",
				cfg, opt.MissRate(), seq.MissRate())
		}
	}
}

func TestInfeasiblePlanIsFlagged(t *testing.T) {
	// A 2-set cache cannot give Compress's 4 windows private slots.
	plan, err := Optimize(kernels.Compress(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Error("plan should be infeasible with 2 sets")
	}
	found := false
	for _, note := range plan.Notes {
		if strings.Contains(note, "wrap") {
			found = true
		}
	}
	if !found {
		t.Errorf("notes should explain the wrap: %v", plan.Notes)
	}
	// The layout must still be usable.
	if _, err := kernels.Compress().Generate(plan.Layout); err != nil {
		t.Errorf("best-effort layout unusable: %v", err)
	}
}

func TestUnreferencedArrayPlaced(t *testing.T) {
	n := &loopir.Nest{
		Name: "extra",
		Arrays: []loopir.Array{
			{Name: "a", Dims: []int{16}},
			{Name: "unused", Dims: []int{16}},
		},
		Loops: []loopir.Loop{loopir.ConstLoop("i", 0, 15)},
		Body:  []loopir.Ref{loopir.Read("a", loopir.Var("i"))},
	}
	plan, err := Optimize(n, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.Layout["unused"]; !ok {
		t.Error("unreferenced array missing from layout")
	}
}

func TestWindowsOverlap(t *testing.T) {
	cases := []struct {
		a, b ClassSlot
		sets int
		want bool
	}{
		{ClassSlot{StartSet: 0, Width: 2}, ClassSlot{StartSet: 2, Width: 2}, 8, false},
		{ClassSlot{StartSet: 0, Width: 3}, ClassSlot{StartSet: 2, Width: 2}, 8, true},
		{ClassSlot{StartSet: 6, Width: 3}, ClassSlot{StartSet: 0, Width: 1}, 8, true}, // wraps
		{ClassSlot{StartSet: 6, Width: 2}, ClassSlot{StartSet: 0, Width: 2}, 8, false},
		{ClassSlot{StartSet: 0, Width: 8}, ClassSlot{StartSet: 4, Width: 1}, 8, true}, // full
	}
	for i, c := range cases {
		if got := windowsOverlap(c.a, c.b, c.sets); got != c.want {
			t.Errorf("case %d: overlap = %v, want %v", i, got, c.want)
		}
		if got := windowsOverlap(c.b, c.a, c.sets); got != c.want {
			t.Errorf("case %d (swapped): overlap = %v, want %v", i, got, c.want)
		}
	}
}

// Property: for randomly generated 2D stencil kernels (random row offsets,
// random array counts), the optimized layout never produces more conflict
// misses than the sequential layout, at any of several geometries.
func TestQuickRandomStencilsNeverWorse(t *testing.T) {
	geometries := []cachesim.Config{
		cachesim.DefaultConfig(32, 4, 1),
		cachesim.DefaultConfig(64, 8, 1),
		cachesim.DefaultConfig(128, 8, 1),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kern := randomStencil(rng)
		if err := kern.Validate(); err != nil {
			return false
		}
		for _, cfg := range geometries {
			plan, err := Optimize(kern, cfg.LineBytes, cfg.NumSets())
			if err != nil {
				t.Logf("optimize: %v", err)
				return false
			}
			optTr, err := kern.Generate(plan.Layout)
			if err != nil {
				t.Logf("generate opt: %v", err)
				return false
			}
			seqTr, err := kern.Generate(loopir.SequentialLayout(kern, 0))
			if err != nil {
				return false
			}
			opt, err := cachesim.RunTrace(cfg, optTr)
			if err != nil {
				return false
			}
			seq, err := cachesim.RunTrace(cfg, seqTr)
			if err != nil {
				return false
			}
			if opt.ConflictMisses > seq.ConflictMisses {
				t.Logf("seed %d kernel %s on %v: opt conflicts %d > seq %d\nnotes: %v",
					seed, kern.Name, cfg, opt.ConflictMisses, seq.ConflictMisses, plan.Notes)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// randomStencil builds a small 2D stencil nest with 1-2 arrays, random
// extents and random in-bounds offsets.
func randomStencil(rng *rand.Rand) *loopir.Nest {
	rows := 16 + rng.Intn(3)*8 // 16, 24, 32
	cols := 16 + rng.Intn(3)*8
	arrays := []loopir.Array{{Name: "a", Dims: []int{rows, cols}}}
	nArr := 1 + rng.Intn(2)
	if nArr == 2 {
		arrays = append(arrays, loopir.Array{Name: "b", Dims: []int{rows, cols}})
	}
	margin := 2
	n := &loopir.Nest{
		Name:   "randstencil",
		Arrays: arrays,
		Loops: []loopir.Loop{
			loopir.ConstLoop("i", margin, rows-1-margin),
			loopir.ConstLoop("j", margin, cols-1-margin),
		},
	}
	nRefs := 2 + rng.Intn(4)
	for k := 0; k < nRefs; k++ {
		di := rng.Intn(2*margin+1) - margin
		dj := rng.Intn(2*margin+1) - margin
		arr := arrays[rng.Intn(len(arrays))].Name
		n.Body = append(n.Body, loopir.Read(arr,
			loopir.Affine(di, "i", 1), loopir.Affine(dj, "j", 1)))
	}
	// Always end with a write to the first array's center.
	n.Body = append(n.Body, loopir.Store("a", loopir.Var("i"), loopir.Var("j")))
	return n
}
