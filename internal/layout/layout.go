// Package layout implements the paper's §4.1 off-chip memory assignment:
// given a kernel and a cache geometry, choose base addresses and padded
// strides for the arrays so that the equivalence classes of references
// (internal/reuse) map to disjoint cache sets, eliminating conflict misses
// for compatible access patterns.
//
// The mechanism is exactly the paper's: in its Compress example (line size
// 2, cache size 8) the row containing class 2 is moved from address 32 to
// 36 — i.e. the row stride is padded from 32 to 36 bytes — so the two
// classes land two cache lines apart and "even though there is no valid
// data in locations 32 through 35 ... the conflict misses have been
// avoided".
//
// The planner works per case (classes sharing a linear part H, which
// therefore advance through the cache in lockstep) and distinguishes two
// regimes:
//
//   - Row-reuse regime: when the full per-row footprint F of the case's
//     sweep fits m rows into the cache (m·F ≤ sets), rows are spaced F
//     lines apart, preserving whole-row temporal reuse across outer-loop
//     iterations (this usually keeps the natural strides).
//   - Window regime (the paper's §3/§4.1 setting, cache smaller than a
//     row): classes are spaced by their §3 window width, the minimum that
//     keeps the concurrently-live data of different classes from
//     colliding.
//
// Classes from different cases drift relative to each other; for those the
// assignment only spreads the initial windows (best effort), which is all
// any static layout can do — the paper's complete-elimination claim is
// likewise limited to compatible patterns.
package layout

import (
	"fmt"

	"memexplore/internal/cachesim"
	"memexplore/internal/loopir"
	"memexplore/internal/reuse"
)

// ClassSlot records where one reference class was placed.
type ClassSlot struct {
	// Array is the array the class references.
	Array string
	// HKey identifies the class's linear part (reuse.Class.HKey).
	HKey string
	// Slot is the starting cache set assigned to the class window.
	Slot int
	// Width is the reserved window width in cache lines.
	Width int
	// StartSet is the set the class leader actually maps to under the
	// final placement.
	StartSet int
}

// Plan is the result of an assignment: the layout to generate traces with
// plus the bookkeeping needed to explain and verify it.
type Plan struct {
	// Nest is the kernel's name.
	Nest string
	// LineBytes and Sets are the cache geometry the plan targets.
	LineBytes int
	Sets      int
	// Feasible reports whether every class window received a private,
	// non-overlapping slot range. When false the plan is best-effort
	// (windows wrap around the available sets).
	Feasible bool
	// Slots describes the per-class placement.
	Slots []ClassSlot
	// Layout is the resulting array placement, ready for Nest.Generate.
	Layout loopir.Layout
	// Notes records regime decisions and best-effort fallbacks.
	Notes []string
}

func (p *Plan) notef(format string, args ...any) {
	p.Notes = append(p.Notes, fmt.Sprintf(format, args...))
}

// caseGroup is one equivalence case: every class that shares a linear
// part, grouped per array.
type caseGroup struct {
	hKey   string
	arrays []string // declaration order
	chains map[string][]reuse.Class
}

// Optimize computes the conflict-avoiding assignment of the nest's arrays
// for a cache with the given line size and number of sets. For a
// direct-mapped cache pass cfg.NumSets() == cfg.NumLines().
func Optimize(n *loopir.Nest, lineBytes, sets int) (*Plan, error) {
	if lineBytes <= 0 || sets <= 0 {
		return nil, fmt.Errorf("layout: invalid geometry: line=%d sets=%d", lineBytes, sets)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	classes, err := reuse.Classes(n)
	if err != nil {
		return nil, err
	}

	plan := &Plan{
		Nest:      n.Name,
		LineBytes: lineBytes,
		Sets:      sets,
		Feasible:  true,
		Layout:    loopir.Layout{},
	}

	cases := groupCases(n, classes)

	// Phase 1: per case, decide regime, spacing, and strides; assign slot
	// ranges off a global cursor.
	type arrayDecision struct {
		strides []int // final byte strides (nil if natural)
		slots   []int // starting slot per chain class
		widths  []int // reserved width per chain class
		chain   []reuse.Class
	}
	decisions := map[string]*arrayDecision{}
	cursor := 0
	for _, cg := range cases {
		spacing, strideAdv, F, rowsFit := caseSpacing(n, cg, lineBytes, sets)
		if rowsFit {
			plan.notef("case %s: row-reuse regime (row footprint %d lines)", describeCase(cg), F)
		}
		for _, arrName := range cg.arrays {
			chain := cg.chains[arrName]
			arr, _ := n.Array(arrName)
			dec := &arrayDecision{chain: chain}
			// Strides: pad the varying dimension (or, in lockstep cases,
			// the row dimension) so one row advances strideAdv lines.
			dec.strides = chooseStrides(n, arr, chain, strideAdv, lineBytes, sets, plan)
			for ci, c := range chain {
				w, err := c.Lines(n, lineBytes)
				if err != nil {
					return nil, err
				}
				width := spacing
				if w > width {
					width = w
				}
				dec.slots = append(dec.slots, cursor%sets)
				dec.widths = append(dec.widths, width)
				cursor += width
				_ = ci
			}
			decisions[arrName] = dec
		}
	}
	if cursor > sets {
		plan.Feasible = false
		plan.notef("need %d cache lines but the cache has only %d sets: windows wrap (conflicts not fully eliminated)", cursor, sets)
	}

	// Phase 2: place arrays in declaration order.
	watermark := uint64(0)
	for _, a := range n.Arrays {
		dec := decisions[a.Name]
		if dec == nil {
			// Declared but never referenced: natural placement.
			plan.Layout[a.Name] = loopir.Placement{Base: watermark}
			watermark += uint64(a.SizeBytes())
			continue
		}
		placement, slots := placeArray(n, a, dec.chain, dec.strides, dec.slots, dec.widths, lineBytes, sets, watermark)
		plan.Layout[a.Name] = placement
		plan.Slots = append(plan.Slots, slots...)
		watermark = placement.Base + uint64(placement.FootprintBytes(a))
	}

	// Final guard: the analytical construction can lose to the natural
	// packed layout when odd natural strides already skew rows across sets
	// (e.g. 33-byte rows). Simulate both on a direct-mapped cache of this
	// geometry and keep the better placement — fewer conflicts, then fewer
	// misses.
	if better, ok := pickBetter(n, plan, lineBytes, sets); ok {
		return better, nil
	}
	return plan, nil
}

// pickBetter compares the planned layout against the sequential layout on
// a direct-mapped cache of the target geometry. If the sequential layout
// wins it is returned (with a note); otherwise ok is false and the caller
// keeps the plan.
func pickBetter(n *loopir.Nest, plan *Plan, lineBytes, sets int) (*Plan, bool) {
	cfg := cachesim.DefaultConfig(sets*lineBytes, lineBytes, 1)
	if cfg.Validate() != nil {
		return nil, false
	}
	planTr, err := n.Generate(plan.Layout)
	if err != nil {
		return nil, false
	}
	seqLayout := loopir.SequentialLayout(n, 0)
	seqTr, err := n.Generate(seqLayout)
	if err != nil {
		return nil, false
	}
	planStats, err := cachesim.RunTrace(cfg, planTr)
	if err != nil {
		return nil, false
	}
	seqStats, err := cachesim.RunTrace(cfg, seqTr)
	if err != nil {
		return nil, false
	}
	if seqStats.ConflictMisses < planStats.ConflictMisses ||
		(seqStats.ConflictMisses == planStats.ConflictMisses && seqStats.Misses < planStats.Misses) {
		out := &Plan{
			Nest:      plan.Nest,
			LineBytes: lineBytes,
			Sets:      sets,
			Feasible:  plan.Feasible,
			Layout:    seqLayout,
			Notes: append(append([]string(nil), plan.Notes...),
				fmt.Sprintf("natural packed layout beats the padded construction on this geometry (%d vs %d conflicts); using it",
					seqStats.ConflictMisses, planStats.ConflictMisses)),
		}
		return out, true
	}
	return nil, false
}

// groupCases partitions classes into cases, each case listing its arrays in
// declaration order with their class chains sorted by leader constant.
func groupCases(n *loopir.Nest, classes []reuse.Class) []*caseGroup {
	byKey := map[string]*caseGroup{}
	var order []*caseGroup
	for _, c := range classes {
		cg := byKey[c.HKey]
		if cg == nil {
			cg = &caseGroup{hKey: c.HKey, chains: map[string][]reuse.Class{}}
			byKey[c.HKey] = cg
			order = append(order, cg)
		}
		cg.chains[c.Array] = append(cg.chains[c.Array], c)
	}
	for _, cg := range order {
		cg.arrays = nil
		for _, a := range n.Arrays {
			if _, ok := cg.chains[a.Name]; ok {
				cg.arrays = append(cg.arrays, a.Name)
				sortClassesByConst(cg.chains[a.Name])
			}
		}
	}
	return order
}

func describeCase(cg *caseGroup) string {
	if len(cg.arrays) == 1 {
		return cg.arrays[0]
	}
	s := cg.arrays[0]
	for _, a := range cg.arrays[1:] {
		s += "+" + a
	}
	return s
}

// caseSpacing decides the slot spacing for one case: the full row
// footprint F when the live rows fit (row-reuse regime), otherwise the §3
// window width. It also returns the per-row set advance the strides should
// realize, and whether the row-reuse regime applies.
func caseSpacing(n *loopir.Nest, cg *caseGroup, lineBytes, sets int) (spacing, strideAdv, footprint int, rowsFit bool) {
	wmax := 1
	m := 1
	F := 0
	for _, arrName := range cg.arrays {
		chain := cg.chains[arrName]
		if len(chain) > m {
			m = len(chain)
		}
		for _, c := range chain {
			if w, err := c.Lines(n, lineBytes); err == nil && w > wmax {
				wmax = w
			}
		}
		if f := sweepFootprintLines(n, chain, lineBytes); f > F {
			F = f
		}
	}
	// Live rows per chain: a class chain of m classes keeps m rows of the
	// array live at once. All of the case's arrays sweep simultaneously,
	// so the total live footprint is Σ chains · F ≈ (m+extra arrays)·F.
	live := 0
	for _, arrName := range cg.arrays {
		live += len(cg.chains[arrName])
	}
	if F >= wmax && live*F <= sets && rotationFree(F, sets, m) {
		return F, F, F, true
	}
	return wmax, wmax, F, false
}

// rotationFree checks that rows k < m apart never map to the same set
// block when rows advance F lines each: F·k ≢ 0 (mod sets) for 0 < k < m.
func rotationFree(F, sets, m int) bool {
	for k := 1; k < m; k++ {
		if (F*k)%sets == 0 {
			return false
		}
	}
	return true
}

// sweepFootprintLines estimates, in cache lines, the address span one
// class covers while the loops that do not advance the chain's varying
// dimension sweep (≈ the padded row footprint).
func sweepFootprintLines(n *loopir.Nest, chain []reuse.Class, lineBytes int) int {
	if len(chain) == 0 {
		return 1
	}
	varyDim, _ := varyingDimension(chain)
	span := 0
	for _, c := range chain {
		s := classSweepSpan(n, c, varyDim)
		if s > span {
			span = s
		}
	}
	f := (span + lineBytes - 1) / lineBytes
	if f < 1 {
		f = 1
	}
	return f
}

// classSweepSpan computes the byte span the class touches at a fixed value
// of the loops driving the varying dimension: the constant spread plus the
// travel of every loop variable that does not appear in the varying
// dimension's index expressions.
func classSweepSpan(n *loopir.Nest, c reuse.Class, varyDim int) int {
	lo := c.Members[0].Const
	hi := c.Members[len(c.Members)-1].Const
	span := hi - lo
	if span < 0 {
		span = -span
	}
	// Which loop vars drive the varying dimension?
	drivers := map[string]bool{}
	if varyDim >= 0 {
		for _, m := range c.Members {
			if varyDim < len(m.Ref.Index) {
				for v, coef := range m.Ref.Index[varyDim].Coef {
					if coef != 0 {
						drivers[v] = true
					}
				}
			}
		}
	} else if len(n.Loops) > 0 {
		// Single-class chain: treat the outermost loop with a non-zero
		// coefficient as the row driver.
		coef := c.Members[0].Coef
		for _, l := range n.Loops {
			if coef[l.Var] != 0 {
				drivers[l.Var] = true
				break
			}
		}
	}
	coef := c.Members[0].Coef
	for _, l := range n.Loops {
		k := coef[l.Var]
		if k == 0 || drivers[l.Var] {
			continue
		}
		trip := loopTravel(l)
		kk := k
		if kk < 0 {
			kk = -kk
		}
		span += kk * trip
	}
	return span + 1
}

// loopTravel returns (hi − lo) for constant bounds, or a conservative 0
// for affine bounds (tiled loops travel at most their tile, already small).
func loopTravel(l loopir.Loop) int {
	if l.Lo.Expr.IsConst() && l.Hi.Expr.IsConst() && l.Lo.Cap == loopir.NoCap && l.Hi.Cap == loopir.NoCap {
		t := l.Hi.Expr.Const - l.Lo.Expr.Const
		if t < 0 {
			t = 0
		}
		return t
	}
	return 0
}

func sortClassesByConst(chain []reuse.Class) {
	for i := 1; i < len(chain); i++ {
		for j := i; j > 0 && chain[j].Members[0].Const < chain[j-1].Members[0].Const; j-- {
			chain[j], chain[j-1] = chain[j-1], chain[j]
		}
	}
}

// chooseStrides picks the byte strides for one array: the varying (row)
// dimension is padded — if needed — so that one unit of class constant
// difference advances the cache set index by strideAdv lines.
func chooseStrides(n *loopir.Nest, a loopir.Array, chain []reuse.Class, strideAdv, lineBytes, sets int, plan *Plan) []int {
	natural := a.RowStrides()
	elem := a.ElementBytes()
	strides := make([]int, len(a.Dims))
	for d := range strides {
		strides[d] = natural[d] * elem
	}
	if len(a.Dims) < 2 {
		return nil // 1D: nothing to pad
	}
	varyDim, uniform := varyingDimension(chain)
	if len(chain) > 1 && !uniform {
		plan.notef("array %q: classes differ in more than one dimension; keeping natural strides (best effort)", a.Name)
		return nil
	}
	if varyDim < 0 {
		// Single class: pad the row dimension (outermost with rows) for
		// lockstep with the rest of the case.
		varyDim = len(a.Dims) - 2
	}
	gap := chainGap(chain, varyDim)
	padded, ok := solveStride(strides[varyDim], gap, strideAdv, lineBytes, sets)
	if !ok {
		plan.Feasible = false
		plan.notef("array %q: no stride aligns class gap %d to %d lines; keeping natural strides", a.Name, gap, strideAdv)
		return nil
	}
	if padded == strides[varyDim] {
		return nil // natural already satisfies the congruence
	}
	plan.notef("array %q: dimension %d stride padded %d → %d bytes", a.Name, varyDim, strides[varyDim], padded)
	strides[varyDim] = padded
	// Padding an inner dimension widens everything outside it: every outer
	// stride must cover the padded extent of its inner dimension.
	for d := varyDim - 1; d >= 0; d-- {
		if min := a.Dims[d+1] * strides[d+1]; strides[d] < min {
			strides[d] = min
		}
	}
	return strides
}

// initIterationEnv returns the loop environment at the first iteration of
// the nest (every loop at its lower bound).
func initIterationEnv(n *loopir.Nest) map[string]int {
	env := map[string]int{}
	for _, l := range n.Loops {
		v, err := l.Lo.Eval(env)
		if err != nil {
			v = 0
		}
		env[l.Var] = v
	}
	return env
}

// placeArray chooses the base address of one array so each chain class's
// leader — at the nest's initial iteration — lands on its assigned slot,
// and reports the realized start sets.
func placeArray(n *loopir.Nest, a loopir.Array, chain []reuse.Class, strides, slots, widths []int, lineBytes, sets int, watermark uint64) (loopir.Placement, []ClassSlot) {
	natural := a.RowStrides()
	elem := a.ElementBytes()
	eff := make([]int, len(a.Dims))
	for d := range eff {
		eff[d] = natural[d] * elem
	}
	if strides != nil {
		copy(eff, strides)
	}

	// Leader byte offset of each class at the initial iteration under the
	// effective strides: H·ī₀ + min constant offset. Evaluating at ī₀
	// line-aligns the actual first window, not just the constant part.
	env := initIterationEnv(n)
	leaderOffsets := make([]int, len(chain))
	for ci, c := range chain {
		lo := 0
		first := true
		for _, m := range c.Members {
			off := 0
			for d, e := range m.Ref.Index {
				v, err := e.Eval(env)
				if err != nil {
					v = e.Const
				}
				off += v * eff[d]
			}
			if first || off < lo {
				lo = off
				first = false
			}
		}
		leaderOffsets[ci] = lo
	}

	period := int64(sets * lineBytes)
	target := int64(slots[0] * lineBytes)
	minBase := int64(watermark)
	if lo := int64(leaderOffsets[0]); lo < 0 && -lo > minBase {
		minBase = -lo
	}
	residue := (target - int64(leaderOffsets[0])) % period
	if residue < 0 {
		residue += period
	}
	base := residue
	if base < minBase {
		base += ((minBase - base + period - 1) / period) * period
	}

	placement := loopir.Placement{Base: uint64(base), StrideBytes: strides}
	out := make([]ClassSlot, 0, len(chain))
	for ci, c := range chain {
		abs := base + int64(leaderOffsets[ci])
		startSet := int((abs / int64(lineBytes)) % int64(sets))
		out = append(out, ClassSlot{
			Array:    c.Array,
			HKey:     c.HKey,
			Slot:     slots[ci],
			Width:    widths[ci],
			StartSet: startSet,
		})
	}
	return placement, out
}

// varyingDimension returns the single outer dimension in which the chain's
// class constants differ, and whether at most one such dimension exists.
// Chains of length ≤ 1 report (-1, true).
func varyingDimension(chain []reuse.Class) (int, bool) {
	if len(chain) <= 1 {
		return -1, true
	}
	ref := chain[0].Members[0].DimConsts
	vary := -1
	for _, c := range chain[1:] {
		dc := c.Members[0].DimConsts
		for d := 0; d < len(ref)-1; d++ { // outer dims only
			if dc[d] != ref[d] {
				if vary != -1 && vary != d {
					return -1, false
				}
				vary = d
			}
		}
	}
	if vary == -1 {
		return -1, false
	}
	return vary, true
}

// chainGap returns the smallest positive difference of the varying
// dimension's constants between adjacent classes of the chain (1 for
// chains without a varying dimension).
func chainGap(chain []reuse.Class, dim int) int {
	if dim < 0 {
		return 1
	}
	gap := 0
	for i := 1; i < len(chain); i++ {
		d := chain[i].Members[0].DimConsts[dim] - chain[i-1].Members[0].DimConsts[dim]
		if d < 0 {
			d = -d
		}
		if gap == 0 || (d != 0 && d < gap) {
			gap = d
		}
	}
	if gap == 0 {
		gap = 1
	}
	return gap
}

// solveStride finds the smallest stride ≥ natural that is a multiple of the
// line size and satisfies (stride·gap/L) ≡ strideAdv (mod sets).
func solveStride(natural, gap, strideAdv, lineBytes, sets int) (int, bool) {
	start := ((natural + lineBytes - 1) / lineBytes) * lineBytes
	want := strideAdv % sets
	for k := 0; k <= sets; k++ {
		stride := start + k*lineBytes
		if (stride/lineBytes*gap)%sets == want {
			return stride, true
		}
	}
	return 0, false
}

// Violation reports two same-case class windows that overlap in the cache.
type Violation struct {
	A, B ClassSlot
}

// Verify checks that within every case (classes sharing a linear part) the
// placed windows are pairwise disjoint modulo the number of sets. It
// returns the overlaps found; a feasible plan for a compatible kernel must
// return none.
func (p *Plan) Verify() []Violation {
	byCase := map[string][]ClassSlot{}
	for _, s := range p.Slots {
		byCase[s.HKey] = append(byCase[s.HKey], s)
	}
	var out []Violation
	for _, slots := range byCase {
		for i := 0; i < len(slots); i++ {
			for j := i + 1; j < len(slots); j++ {
				if windowsOverlap(slots[i], slots[j], p.Sets) {
					out = append(out, Violation{A: slots[i], B: slots[j]})
				}
			}
		}
	}
	return out
}

// windowsOverlap tests circular interval overlap of [a.StartSet,
// a.StartSet+a.Width) and [b.StartSet, b.StartSet+b.Width) modulo sets.
func windowsOverlap(a, b ClassSlot, sets int) bool {
	if a.Width >= sets || b.Width >= sets {
		return true
	}
	d := ((b.StartSet-a.StartSet)%sets + sets) % sets
	return d < a.Width || sets-d < b.Width
}
