package memexplore_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"memexplore"
	"memexplore/internal/extrace"
	"memexplore/internal/trace"
)

// synthPhaseLocalRefs generates a deterministic trace whose accesses are
// confined to small windows at widely separated bases: a hot 4KB window
// walked densely (it carries nearly all granule transitions) interleaved
// with cold 1KB windows at fresh 1MiB-aligned bases, each visited in
// long runs of slowly moving addresses. The phase locality is the point:
// whole mxt v2 chunks (4096 records) sit inside a handful of 64-byte
// granules, so index-guided skipping has real work to do under both the
// sampling hash and the dominant-block filter.
func synthPhaseLocalRefs(seed int64, n int) []memexplore.TraceRef {
	rng := rand.New(rand.NewSource(seed))
	refs := make([]memexplore.TraceRef, 0, n)
	emit := func(addr uint64) {
		r := memexplore.TraceRef{Addr: addr, Kind: trace.Kind(rng.Intn(3))}
		if rng.Intn(16) == 0 {
			r.Size = uint8(1 + rng.Intn(64))
		}
		refs = append(refs, r)
	}
	const hotBase = uint64(1) << 20
	coldBase := uint64(16) << 20
	for len(refs) < n {
		if rng.Intn(2) == 0 {
			// Hot burst: a stride-64 walk around a 4KB window — every
			// record is a granule transition.
			seg := 2048 + rng.Intn(4096)
			off := uint64(rng.Intn(64)) * 64
			for i := 0; i < seg && len(refs) < n; i++ {
				off = (off + 64) % (4 << 10)
				emit(hotBase + off)
			}
		} else {
			// Cold segment: long runs at a fresh base, the address moving
			// only occasionally within a 1KB window — few transitions, and
			// long enough (> one chunk) that whole chunks are cold.
			coldBase += uint64(1) << 20
			seg := 6144 + rng.Intn(8192)
			addr := coldBase
			for i := 0; i < seg && len(refs) < n; i++ {
				if rng.Intn(32) == 0 {
					addr = coldBase + uint64(rng.Intn(16))*64
				}
				emit(addr)
			}
		}
	}
	return refs
}

// encodeV2 serializes refs as mxt v2 with the given writer options.
func encodeV2(t *testing.T, refs []memexplore.TraceRef, wo extrace.V2WriterOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := extrace.WriteBinaryV2Options(&buf, trace.FromRefs(refs).Reader(), wo); err != nil {
		t.Fatalf("encoding v2 trace: %v", err)
	}
	return buf.Bytes()
}

// normalizeSkipStats zeroes the IngestStats fields that legitimately
// differ between an index-skipping run and a full decode: the skip
// counters themselves, the transport (mmap vs stream) and the byte count
// (the index-less artifact is shorter; skipping reads fewer bytes).
// Everything else — records, kinds, footprint, stride profile — must be
// bit-identical.
func normalizeSkipStats(st *memexplore.TraceIngestStats) {
	st.ChunksSkipped = 0
	st.RecordsSkipped = 0
	st.Mmap = false
	st.BytesRead = 0
}

// TestIndexSkipBitIdentical is the contract of index-guided chunk
// skipping: for any combination of sampling rate, dominant-block epsilon
// and worker count, sweeping an indexed artifact (where the reader seeks
// past chunks the MXTI01 summary proves dead) agrees with a full decode
// of the same records (an index-less encoding, which cannot skip
// anything). Sampling-only legs are bit-identical — the sampling hash is
// a pure address function, so both runs drop the same records. Dominant
// legs are tolerance legs: an indexed artifact builds its hot set from
// the MXTI01 per-chunk granule summaries (presence, a coarser criterion
// than the bare artifact's decode-prepass transition counts — see
// core.dominantFromIndex), so the two runs skip different cold sets. The
// filter's estimation contract bounds each run's miss rate within ~eps
// of the exact sweep's, so the two stay within 2·eps of each other while
// the exact fields (Accesses, and the whole IngestStats after chunk-fold
// normalization) remain bit-identical.
func TestIndexSkipBitIdentical(t *testing.T) {
	refs := synthPhaseLocalRefs(42, 100_000)
	indexed := encodeV2(t, refs, extrace.V2WriterOptions{})
	bare := encodeV2(t, refs, extrace.V2WriterOptions{NoIndex: true})

	cases := []struct {
		name        string
		sampleRate  float64
		dominantEps float64
		wantSkips   bool // engineered so the indexed run must skip chunks
	}{
		{"sample=0.02", 0.02, 0, true},
		{"sample=0.25", 0.25, 0, false},
		{"dominant=0.10", 0, 0.10, true},
		{"sample=0.02_dominant=0.10", 0.02, 0.10, true},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 3} {
			t.Run(tc.name+"_workers="+itoa(workers), func(t *testing.T) {
				opts := traceTestOptions()
				opts.SampleRate = tc.sampleRate
				opts.SampleSeed = 7
				opts.DominantEps = tc.dominantEps
				opts.Workers = workers

				msIdx, stIdx, err := memexplore.ExploreTrace(bytes.NewReader(indexed), opts, memexplore.TraceIngestOptions{})
				if err != nil {
					t.Fatalf("indexed sweep: %v", err)
				}
				msFull, stFull, err := memexplore.ExploreTrace(bytes.NewReader(bare), opts, memexplore.TraceIngestOptions{})
				if err != nil {
					t.Fatalf("full-decode sweep: %v", err)
				}
				if stFull.ChunksSkipped != 0 {
					t.Fatalf("index-less artifact skipped %d chunks; the control run must fully decode", stFull.ChunksSkipped)
				}
				if tc.wantSkips && stIdx.ChunksSkipped == 0 {
					t.Errorf("indexed run skipped no chunks; the property test is vacuous for %s", tc.name)
				}
				if tc.dominantEps > 0 {
					// Different hot-set criteria (index presence vs decoded
					// transitions): exact fields identical, estimated miss
					// rates within the stacked 2·eps envelope.
					if len(msIdx) != len(msFull) {
						t.Fatalf("point counts diverge: %d vs %d", len(msIdx), len(msFull))
					}
					for i := range msIdx {
						if msIdx[i].Accesses != msFull[i].Accesses {
							t.Errorf("point %d: Accesses %d != %d", i, msIdx[i].Accesses, msFull[i].Accesses)
						}
						if d := msIdx[i].MissRate - msFull[i].MissRate; d > 2*tc.dominantEps || d < -2*tc.dominantEps {
							t.Errorf("point %d: miss rates %.4f vs %.4f differ beyond 2·eps=%.2f",
								i, msIdx[i].MissRate, msFull[i].MissRate, 2*tc.dominantEps)
						}
					}
				} else if !reflect.DeepEqual(msIdx, msFull) {
					t.Errorf("Metrics diverge between indexed-skip and full decode\nindexed: %+v\nfull:    %+v", msIdx[0], msFull[0])
				}
				normalizeSkipStats(&stIdx)
				normalizeSkipStats(&stFull)
				if !reflect.DeepEqual(stIdx, stFull) {
					t.Errorf("IngestStats diverge between indexed-skip and full decode\nindexed: %+v\nfull:    %+v", stIdx, stFull)
				}
			})
		}
	}
}

// TestIndexSkipBitIdenticalMmap repeats the low-rate leg through the
// mmap fast path: the indexed artifact on disk, opened as *os.File, must
// map the file, skip chunks, and still match the streamed full decode.
func TestIndexSkipBitIdenticalMmap(t *testing.T) {
	refs := synthPhaseLocalRefs(43, 100_000)
	indexed := encodeV2(t, refs, extrace.V2WriterOptions{})
	bare := encodeV2(t, refs, extrace.V2WriterOptions{NoIndex: true})

	path := filepath.Join(t.TempDir(), "phase.mxt")
	if err := os.WriteFile(path, indexed, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	opts := traceTestOptions()
	opts.SampleRate = 0.02
	opts.SampleSeed = 7

	msIdx, stIdx, err := memexplore.ExploreTrace(f, opts, memexplore.TraceIngestOptions{})
	if err != nil {
		t.Fatalf("mmap sweep: %v", err)
	}
	msFull, stFull, err := memexplore.ExploreTrace(bytes.NewReader(bare), opts, memexplore.TraceIngestOptions{})
	if err != nil {
		t.Fatalf("full-decode sweep: %v", err)
	}
	if !stIdx.Mmap {
		t.Error("on-disk indexed artifact did not take the mmap path")
	}
	if stIdx.ChunksSkipped == 0 {
		t.Error("mmap run skipped no chunks")
	}
	if !reflect.DeepEqual(msIdx, msFull) {
		t.Error("Metrics diverge between mmap indexed-skip and streamed full decode")
	}
	normalizeSkipStats(&stIdx)
	normalizeSkipStats(&stFull)
	if !reflect.DeepEqual(stIdx, stFull) {
		t.Errorf("IngestStats diverge between mmap indexed-skip and streamed full decode\nindexed: %+v\nfull:    %+v", stIdx, stFull)
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}
