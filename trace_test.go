package memexplore_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"memexplore"
)

// traceTestOptions is the sweep space the golden traces were recorded
// against (see the golden expectations below).
func traceTestOptions() memexplore.Options {
	opts := memexplore.DefaultOptions()
	opts.CacheSizes = []int{32, 64, 128}
	opts.LineSizes = []int{4, 8}
	opts.Assocs = []int{1, 2}
	return opts
}

// TestGoldenTraces ingests the bundled gzipped din traces end to end —
// file bytes → streaming reader → batched sweep → selection — and checks
// the known-best configurations. The traces were exported from the
// matadd and compress kernels (tiling 1, sequential layout); regenerate
// with WriteDinTrace + compress/gzip if the kernels ever change.
func TestGoldenTraces(t *testing.T) {
	cases := []struct {
		file      string
		records   int64
		bestLabel string
	}{
		{"matadd.din.gz", 108, "C32L4S1B1"},
		{"compress.din.gz", 4805, "C64L8S1B1"},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			f, err := os.Open(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ms, st, err := memexplore.ExploreTrace(f, traceTestOptions(), memexplore.TraceIngestOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if st.Records != tc.records || st.Rejects != 0 || !st.Gzip {
				t.Errorf("ingest stats = %+v, want %d gzipped records", st, tc.records)
			}
			best, ok := memexplore.MinEnergy(ms)
			if !ok {
				t.Fatal("empty sweep")
			}
			if best.Label() != tc.bestLabel {
				t.Errorf("best config = %s, want %s", best.Label(), tc.bestLabel)
			}
		})
	}
}

// TestGoldenTraceMatchesKernelSweep pins the golden file to the live
// kernel: streaming testdata/matadd.din.gz must reproduce, bit for bit,
// the in-memory matadd sweep it was exported from.
func TestGoldenTraceMatchesKernelSweep(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "matadd.din.gz"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, _, err := memexplore.ExploreTrace(f, traceTestOptions(), memexplore.TraceIngestOptions{})
	if err != nil {
		t.Fatal(err)
	}

	kern, err := memexplore.Kernel("matadd")
	if err != nil {
		t.Fatal(err)
	}
	opts := traceTestOptions()
	opts.Tilings = []int{1}
	opts.OptimizeLayout = false
	want, err := memexplore.Explore(kern, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d points from the trace, %d from the kernel", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d differs:\n  trace : %+v\n  kernel: %+v", i, got[i], want[i])
		}
	}
}

// TestFacadeTraceEncoders exercises the exported encoders: a kernel trace
// written through WriteDinTrace and WriteBinaryTrace streams back through
// NewTraceReader with identical record counts, and the binary path
// round-trips refs bit-exactly.
func TestFacadeTraceEncoders(t *testing.T) {
	kern, err := memexplore.Kernel("matadd")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := memexplore.GenerateTrace(kern, memexplore.SequentialLayout(kern, 0))
	if err != nil {
		t.Fatal(err)
	}

	var din, bin bytes.Buffer
	if n, err := memexplore.WriteDinTrace(&din, tr); err != nil || n != int64(tr.Len()) {
		t.Fatalf("WriteDinTrace = (%d, %v), want %d records", n, err, tr.Len())
	}
	if n, err := memexplore.WriteBinaryTrace(&bin, tr); err != nil || n != int64(tr.Len()) {
		t.Fatalf("WriteBinaryTrace = (%d, %v), want %d records", n, err, tr.Len())
	}

	rd := memexplore.NewTraceReader(&bin, memexplore.TraceIngestOptions{})
	defer rd.Close()
	var refs []memexplore.TraceRef
	buf := make([]memexplore.TraceRef, 64)
	for {
		n, err := rd.Read(buf)
		refs = append(refs, buf[:n]...)
		if err != nil {
			break
		}
	}
	if len(refs) != tr.Len() {
		t.Fatalf("binary round trip yielded %d refs, want %d", len(refs), tr.Len())
	}
	for i, want := range tr.Refs() {
		if refs[i] != want {
			t.Fatalf("ref %d = %+v, want %+v", i, refs[i], want)
		}
	}
}

// TestFacadeTraceErrors checks the re-exported error identities.
func TestFacadeTraceErrors(t *testing.T) {
	opts := traceTestOptions()
	if _, _, err := memexplore.ExploreTrace(bytes.NewReader(nil), opts, memexplore.TraceIngestOptions{}); !errors.Is(err, memexplore.ErrEmptyTrace) {
		t.Errorf("empty stream: err = %v, want ErrEmptyTrace", err)
	}
	_, _, err := memexplore.ExploreTrace(bytes.NewReader([]byte("0 10\n0 20\n")), opts,
		memexplore.TraceIngestOptions{MaxRecords: 1})
	if !errors.Is(err, memexplore.ErrTraceRecordLimit) {
		t.Errorf("record limit: err = %v, want ErrTraceRecordLimit", err)
	}
	var perr *memexplore.TraceParseError
	_, _, err = memexplore.ExploreTrace(bytes.NewReader([]byte("nope\n")), opts, memexplore.TraceIngestOptions{})
	if !errors.As(err, &perr) || perr.Line != 1 {
		t.Errorf("malformed stream: err = %v, want *TraceParseError at line 1", err)
	}
}
