package memexplore_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"memexplore"
)

// traceTestOptions is the sweep space the golden traces were recorded
// against (see the golden expectations below).
func traceTestOptions() memexplore.Options {
	opts := memexplore.DefaultOptions()
	opts.CacheSizes = []int{32, 64, 128}
	opts.LineSizes = []int{4, 8}
	opts.Assocs = []int{1, 2}
	return opts
}

// TestGoldenTraces ingests the bundled gzipped din traces end to end —
// file bytes → streaming reader → batched sweep → selection — and checks
// the known-best configurations. The traces were exported from the
// matadd and compress kernels (tiling 1, sequential layout); regenerate
// with WriteDinTrace + compress/gzip if the kernels ever change.
func TestGoldenTraces(t *testing.T) {
	cases := []struct {
		file      string
		records   int64
		bestLabel string
	}{
		{"matadd.din.gz", 108, "C32L4S1B1"},
		{"compress.din.gz", 4805, "C64L8S1B1"},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			f, err := os.Open(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ms, st, err := memexplore.ExploreTrace(f, traceTestOptions(), memexplore.TraceIngestOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if st.Records != tc.records || st.Rejects != 0 || !st.Gzip {
				t.Errorf("ingest stats = %+v, want %d gzipped records", st, tc.records)
			}
			best, ok := memexplore.MinEnergy(ms)
			if !ok {
				t.Fatal("empty sweep")
			}
			if best.Label() != tc.bestLabel {
				t.Errorf("best config = %s, want %s", best.Label(), tc.bestLabel)
			}
		})
	}
}

// TestGoldenTraceMatchesKernelSweep pins the golden file to the live
// kernel: streaming testdata/matadd.din.gz must reproduce, bit for bit,
// the in-memory matadd sweep it was exported from.
func TestGoldenTraceMatchesKernelSweep(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "matadd.din.gz"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, _, err := memexplore.ExploreTrace(f, traceTestOptions(), memexplore.TraceIngestOptions{})
	if err != nil {
		t.Fatal(err)
	}

	kern, err := memexplore.Kernel("matadd")
	if err != nil {
		t.Fatal(err)
	}
	opts := traceTestOptions()
	opts.Tilings = []int{1}
	opts.OptimizeLayout = false
	want, err := memexplore.Explore(kern, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d points from the trace, %d from the kernel", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d differs:\n  trace : %+v\n  kernel: %+v", i, got[i], want[i])
		}
	}
}

// TestFacadeTraceEncoders exercises the exported encoders: a kernel trace
// written through WriteDinTrace and WriteBinaryTrace streams back through
// NewTraceReader with identical record counts, and the binary path
// round-trips refs bit-exactly.
func TestFacadeTraceEncoders(t *testing.T) {
	kern, err := memexplore.Kernel("matadd")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := memexplore.GenerateTrace(kern, memexplore.SequentialLayout(kern, 0))
	if err != nil {
		t.Fatal(err)
	}

	var din, bin bytes.Buffer
	if n, err := memexplore.WriteDinTrace(&din, tr); err != nil || n != int64(tr.Len()) {
		t.Fatalf("WriteDinTrace = (%d, %v), want %d records", n, err, tr.Len())
	}
	if n, err := memexplore.WriteBinaryTrace(&bin, tr); err != nil || n != int64(tr.Len()) {
		t.Fatalf("WriteBinaryTrace = (%d, %v), want %d records", n, err, tr.Len())
	}

	rd := memexplore.NewTraceReader(&bin, memexplore.TraceIngestOptions{})
	defer rd.Close()
	var refs []memexplore.TraceRef
	buf := make([]memexplore.TraceRef, 64)
	for {
		n, err := rd.Read(buf)
		refs = append(refs, buf[:n]...)
		if err != nil {
			break
		}
	}
	if len(refs) != tr.Len() {
		t.Fatalf("binary round trip yielded %d refs, want %d", len(refs), tr.Len())
	}
	for i, want := range tr.Refs() {
		if refs[i] != want {
			t.Fatalf("ref %d = %+v, want %+v", i, refs[i], want)
		}
	}
}

// TestConvertGoldenV2BitIdentical is the transcode smoke: each golden
// din trace re-encoded into columnar mxt v2 must sweep to bit-identical
// metrics, so the fast on-disk format can never drift from the text
// format it mirrors.
func TestConvertGoldenV2BitIdentical(t *testing.T) {
	for _, file := range []string{"matadd.din.gz", "compress.din.gz"} {
		t.Run(file, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", file))
			if err != nil {
				t.Fatal(err)
			}
			exact, st, err := memexplore.ExploreTrace(bytes.NewReader(data), traceTestOptions(), memexplore.TraceIngestOptions{})
			if err != nil {
				t.Fatal(err)
			}

			var v2 bytes.Buffer
			n, tst, err := memexplore.TranscodeTraceV2(&v2, bytes.NewReader(data), memexplore.TraceIngestOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if n != st.Records || tst.Records != st.Records {
				t.Fatalf("transcode moved %d records (ingest %d), want %d", n, tst.Records, st.Records)
			}
			t.Logf("%s: %d records, %d bytes mxt v2 (din.gz is %d bytes)", file, n, v2.Len(), len(data))

			got, vst, err := memexplore.ExploreTrace(bytes.NewReader(v2.Bytes()), traceTestOptions(), memexplore.TraceIngestOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if vst.Format != "binaryv2" || vst.Records != st.Records {
				t.Errorf("v2 ingest = format %q, %d records; want binaryv2, %d", vst.Format, vst.Records, st.Records)
			}
			for i := range exact {
				if got[i] != exact[i] {
					t.Fatalf("point %d differs after transcode:\n  v2 : %+v\n  din: %+v", i, got[i], exact[i])
				}
			}
		})
	}
}

// expandGoldenTrace derives a sampling-friendly workload from a golden
// trace: sequential copies of the original at 1 MiB address offsets.
// The bundled traces touch only a handful of 64-byte blocks — far too
// few for block-level sampling to say anything — so the error-bound
// suite widens the block population while preserving the golden access
// pattern segment by segment.
func expandGoldenTrace(t *testing.T, file string, copies int) []byte {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd := memexplore.NewTraceReader(f, memexplore.TraceIngestOptions{})
	defer rd.Close()
	var refs []memexplore.TraceRef
	buf := make([]memexplore.TraceRef, 1024)
	for {
		n, err := rd.Read(buf)
		refs = append(refs, buf[:n]...)
		if err != nil {
			break
		}
	}
	var din bytes.Buffer
	for k := 0; k < copies; k++ {
		for _, r := range refs {
			din.WriteByte(byte('0' + r.Kind.DinLabel()))
			din.WriteByte(' ')
			din.WriteString(strconv.FormatUint(r.Addr+uint64(k)<<20, 16))
			if r.EffectiveSize() != 1 {
				din.WriteByte(' ')
				din.WriteString(strconv.FormatUint(uint64(r.EffectiveSize()), 10))
			}
			din.WriteByte('\n')
		}
	}
	return din.Bytes()
}

// TestGoldenTraceSampling is the error-bound suite: over expanded
// golden workloads, a sampled sweep at each rate must respect its own
// reported confidence envelope and be bit-identical across reruns and
// worker counts. Two regimes, asserted separately:
//
//   - set-associative points: two-sided — the estimate lands within the
//     envelope (floored at 0.06 absolute for the small-population tail);
//   - direct-mapped points: one-sided — block sampling removes conflict
//     partners along with the blocks, so it can only underestimate a
//     conflict-dominated miss rate (the documented limitation, see
//     docs/TRACE_FORMAT.md); overestimating beyond the envelope is
//     still a bug in either regime.
func TestGoldenTraceSampling(t *testing.T) {
	for _, tc := range []struct {
		file   string
		copies int
	}{
		{"matadd.din.gz", 64},
		{"compress.din.gz", 32},
	} {
		data := expandGoldenTrace(t, tc.file, tc.copies)
		exact, _, err := memexplore.ExploreTrace(bytes.NewReader(data), traceTestOptions(), memexplore.TraceIngestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, rate := range []float64{0.5, 0.1, 0.01} {
			t.Run(tc.file+"/"+strconv.FormatFloat(rate, 'g', -1, 64), func(t *testing.T) {
				opts := traceTestOptions()
				opts.SampleRate = rate
				opts.SampleSeed = 1
				ms, st, err := memexplore.ExploreTrace(bytes.NewReader(data), opts, memexplore.TraceIngestOptions{})
				if errors.Is(err, memexplore.ErrEmptyTrace) {
					// Legal at aggressive rates when the hash filter keeps no
					// blocks at all.
					t.Skipf("rate %g kept no blocks: %v", rate, err)
				}
				if err != nil {
					t.Fatal(err)
				}

				if ms[0].SampleRate != rate {
					t.Errorf("envelope rate = %g, want %g", ms[0].SampleRate, rate)
				}
				if ms[0].SampledRecords <= 0 || ms[0].SampledRecords > st.Records {
					t.Errorf("sampled_records = %d, want within (0, %d]", ms[0].SampledRecords, st.Records)
				}
				for i := range ms {
					diff := ms[i].MissRate - exact[i].MissRate
					over := 3 * ms[i].MissRateCI
					if over < 0.02 {
						over = 0.02
					}
					if diff > over {
						t.Errorf("point %d (%s): sampled miss rate %.4f overestimates exact %.4f by %.4f (> %.4f)",
							i, ms[i].Label(), ms[i].MissRate, exact[i].MissRate, diff, over)
					}
					under := 3 * ms[i].MissRateCI
					if under < 0.06 {
						under = 0.06
					}
					if ms[i].Assoc > 1 && -diff > under {
						t.Errorf("point %d (%s): sampled miss rate %.4f vs exact %.4f, diff %.4f outside envelope %.4f",
							i, ms[i].Label(), ms[i].MissRate, exact[i].MissRate, diff, under)
					}
				}

				// Bit-identical on rerun and at any worker count.
				opts.Workers = 4
				again, _, err := memexplore.ExploreTrace(bytes.NewReader(data), opts, memexplore.TraceIngestOptions{})
				if err != nil {
					t.Fatal(err)
				}
				for i := range ms {
					if again[i] != ms[i] {
						t.Fatalf("point %d not deterministic across worker counts", i)
					}
				}
			})
		}
	}
}

// TestFacadeTraceErrors checks the re-exported error identities.
func TestFacadeTraceErrors(t *testing.T) {
	opts := traceTestOptions()
	if _, _, err := memexplore.ExploreTrace(bytes.NewReader(nil), opts, memexplore.TraceIngestOptions{}); !errors.Is(err, memexplore.ErrEmptyTrace) {
		t.Errorf("empty stream: err = %v, want ErrEmptyTrace", err)
	}
	_, _, err := memexplore.ExploreTrace(bytes.NewReader([]byte("0 10\n0 20\n")), opts,
		memexplore.TraceIngestOptions{MaxRecords: 1})
	if !errors.Is(err, memexplore.ErrTraceRecordLimit) {
		t.Errorf("record limit: err = %v, want ErrTraceRecordLimit", err)
	}
	var perr *memexplore.TraceParseError
	_, _, err = memexplore.ExploreTrace(bytes.NewReader([]byte("nope\n")), opts, memexplore.TraceIngestOptions{})
	if !errors.As(err, &perr) || perr.Line != 1 {
		t.Errorf("malformed stream: err = %v, want *TraceParseError at line 1", err)
	}
}
