# Standard workflows for the memexplore reproduction.

GO ?= go

.PHONY: all build vet test short bench figs exhibits fuzz cover clean check serve

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Tier-1 plus the race-sensitive packages (the service and the
# context-aware exploration core) under the race detector.
check: build vet test
	$(GO) test -race ./internal/service ./internal/core

# Run the memexplored HTTP service (see docs/SERVICE.md).
serve:
	$(GO) run ./cmd/memexplored

short:
	$(GO) test -short ./...

# One testing.B target per paper table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every exhibit with REPRODUCED/DIVERGED checks.
figs:
	$(GO) run ./cmd/paperfigs

# Refresh the committed exhibit record under docs/exhibits/.
exhibits:
	$(GO) run ./cmd/paperfigs -out docs/exhibits > /dev/null

# Short fuzz passes over the parsers.
fuzz:
	$(GO) test ./internal/loopir -fuzz 'FuzzParse$$' -fuzztime 30s
	$(GO) test ./internal/loopir -fuzz FuzzParseExpr -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzReadDin -fuzztime 30s

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
