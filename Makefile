# Standard workflows for the memexplore reproduction.

GO ?= go

.PHONY: all build vet test short bench bench-sweep bench-trace bench-ingest bench-service bench-dist bench-search bench-guard figs exhibits fuzz cover clean check serve

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Tier-1 plus the race-sensitive packages (the service, the async job
# subsystem, the context-aware exploration core, the pooled sweep
# engines and the guided search) under the race detector, plus short
# fuzz passes over the external-trace parser and the genome repair.
check: build vet test
	$(GO) test -race ./internal/service ./internal/jobs ./internal/core ./internal/cachesim ./internal/extrace ./internal/search
	$(GO) test ./internal/extrace -run '^$$' -fuzz FuzzParseDin -fuzztime 5s
	$(GO) test ./internal/extrace -run '^$$' -fuzz FuzzParseBinaryV2 -fuzztime 5s
	$(GO) test ./internal/extrace -run '^$$' -fuzz FuzzParseIndexFooter -fuzztime 5s
	$(GO) test ./internal/search -run '^$$' -fuzz FuzzGenome -fuzztime 5s

# Run the memexplored HTTP service (see docs/SERVICE.md).
serve:
	$(GO) run ./cmd/memexplored

short:
	$(GO) test -short ./...

# One testing.B target per paper table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# The sweep-engine comparison (per-point vs batched vs inclusion vs
# inclusion-parallel vs the single-group fan-out); the raw runs land in
# BENCH_sweep.out for curation into BENCH_sweep.json.
bench-sweep:
	$(GO) test -run '^$$' -bench BenchmarkExploreSweep -benchmem -count 3 . | tee BENCH_sweep.out

# The external-trace ingestion pipeline: din text → streaming sweep at
# workers = 1 / 2 / NumCPU, plus the billion-record levers (columnar mxt
# v2 decode, SHARDS sampling at R=0.01, dominant-block prefiltering)
# against the exact din baseline; the raw runs land in BENCH_trace.out
# for curation into BENCH_trace.json.
bench-trace:
	$(GO) test -run '^$$' -bench 'BenchmarkExploreDinTrace|BenchmarkExploreTraceSampled' -benchmem -count 3 . | tee BENCH_trace.out

# The zero-copy ingestion levers in isolation: mmap vs buffered decode of
# the same on-disk mxt v2 artifact, and index-guided chunk skipping vs
# full decode at R=0.01; appends to BENCH_trace.out for curation into
# BENCH_trace.json.
bench-ingest:
	$(GO) test -run '^$$' -bench BenchmarkIngest -benchmem -count 3 . | tee -a BENCH_trace.out

# Guided search vs exhaustive sweep at matched budgets on an enlarged
# configuration space; the raw runs land in BENCH_search.out for
# curation into BENCH_search.json.
bench-search:
	$(GO) test -run '^$$' -bench BenchmarkSearch -benchmem -count 3 . | tee BENCH_search.out

# Service-level load test: p50/p99 latencies of the synchronous
# /v1/explore endpoint and the async job pipeline against an in-process
# server; the report lands in BENCH_service.json.
bench-service:
	$(GO) run ./cmd/memexplore-bench

# Distributed trace sweeps: replica subprocesses (GOMAXPROCS=1 each)
# over a shared jobs directory, wall-clock legs at 1/2/4 replicas plus
# an isolated-shard critical-path projection, byte-diffed against the
# local run; the report lands in BENCH_dist.json.
bench-dist:
	$(GO) run ./cmd/memexplore-bench -dist

# CI smoke: one iteration of the sweep benchmark on a vet-clean build —
# catches engine regressions without paying full benchmark time.
bench-guard: build vet
	$(GO) test -run '^$$' -bench BenchmarkExploreSweep -benchtime 1x .

# Regenerate every exhibit with REPRODUCED/DIVERGED checks.
figs:
	$(GO) run ./cmd/paperfigs

# Refresh the committed exhibit record under docs/exhibits/.
exhibits:
	$(GO) run ./cmd/paperfigs -out docs/exhibits > /dev/null

# Short fuzz passes over the parsers.
fuzz:
	$(GO) test ./internal/loopir -fuzz 'FuzzParse$$' -fuzztime 30s
	$(GO) test ./internal/loopir -fuzz FuzzParseExpr -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzReadDin -fuzztime 30s
	$(GO) test ./internal/extrace -fuzz FuzzParseDin -fuzztime 30s
	$(GO) test ./internal/extrace -fuzz FuzzParseBinaryV2 -fuzztime 30s
	$(GO) test ./internal/extrace -fuzz FuzzParseIndexFooter -fuzztime 30s
	$(GO) test ./internal/cachesim -fuzz FuzzPerSetStacks -fuzztime 30s
	$(GO) test ./internal/search -fuzz FuzzGenome -fuzztime 30s

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
