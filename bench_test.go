// Benchmarks that regenerate every table and figure of the paper's
// evaluation — one testing.B target per exhibit, as indexed in DESIGN.md.
// Run them all with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding exhibit from
// internal/figures (the same code cmd/paperfigs prints) and fails if any
// of the paper's qualitative claims diverge. The printed tables for the
// record live in EXPERIMENTS.md.
package memexplore_test

import (
	"bytes"
	"context"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"io"
	"os"
	"path/filepath"
	"reflect"

	"memexplore"
	"memexplore/internal/bus"
	"memexplore/internal/cachesim"
	"memexplore/internal/core"
	"memexplore/internal/extrace"
	"memexplore/internal/figures"
	"memexplore/internal/kernels"
	"memexplore/internal/loopir"
	"memexplore/internal/search"
)

// runExhibit executes one figure/table generator b.N times, failing the
// benchmark if the regenerated data contradicts the paper's claims.
func runExhibit(b *testing.B, id string) {
	b.Helper()
	entry, err := figures.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := entry.Run()
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			continue
		}
		if len(res.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
		for _, f := range res.Findings {
			if strings.Contains(f, "[DIVERGED]") {
				b.Errorf("%s: %s", id, f)
			}
		}
	}
}

// BenchmarkFig01EnergyVsEm regenerates Figure 1: Compress energy versus
// cache and line size for Em = 43.56 nJ and Em = 2.31 nJ (the trend
// reversal that motivates energy as a first-class metric).
func BenchmarkFig01EnergyVsEm(b *testing.B) { runExhibit(b, "fig01") }

// BenchmarkFig02MetricsVsCacheAndLine regenerates Figure 2: miss rate,
// cycles and energy for the five kernels over C16L4…C128L32.
func BenchmarkFig02MetricsVsCacheAndLine(b *testing.B) { runExhibit(b, "fig02") }

// BenchmarkFig03CompressCycles regenerates Figure 3: the Compress cycle
// surface over the (C, L) grid.
func BenchmarkFig03CompressCycles(b *testing.B) { runExhibit(b, "fig03") }

// BenchmarkFig04CompressEnergy regenerates Figure 4: the Compress energy
// surface (Em = 4.95 nJ) with its C16L4 minimum.
func BenchmarkFig04CompressEnergy(b *testing.B) { runExhibit(b, "fig04") }

// BenchmarkFig05OffchipAssignment regenerates Figure 5: the miss-rate
// reduction from the §4.1 off-chip memory assignment.
func BenchmarkFig05OffchipAssignment(b *testing.B) { runExhibit(b, "fig05") }

// BenchmarkFig06Tiling regenerates Figure 6: miss rate, cycles and energy
// versus tiling size at C64L8.
func BenchmarkFig06Tiling(b *testing.B) { runExhibit(b, "fig06") }

// BenchmarkFig07EnergyTilingAssoc regenerates Figure 7: Compress and
// Dequant energy versus tiling and versus set associativity.
func BenchmarkFig07EnergyTilingAssoc(b *testing.B) { runExhibit(b, "fig07") }

// BenchmarkFig08Associativity regenerates Figure 8: miss rate, cycles and
// energy versus set associativity at C64L8.
func BenchmarkFig08Associativity(b *testing.B) { runExhibit(b, "fig08") }

// BenchmarkFig09AssocTilingCombined regenerates Figure 9: the combined
// (SA, TS) table with optimized and unoptimized values.
func BenchmarkFig09AssocTilingCombined(b *testing.B) { runExhibit(b, "fig09") }

// BenchmarkFig10MPEGPerKernel regenerates Figure 10: the minimum-energy
// configuration for each MPEG decoder kernel.
func BenchmarkFig10MPEGPerKernel(b *testing.B) { runExhibit(b, "fig10") }

// BenchmarkSec3MinCacheSize regenerates the §3 analytical minimum cache
// sizes and the bounded-selection examples.
func BenchmarkSec3MinCacheSize(b *testing.B) { runExhibit(b, "sec3") }

// BenchmarkSec3BoundedSelection is an alias target for the §3 selection
// queries (the same exhibit computes both tables).
func BenchmarkSec3BoundedSelection(b *testing.B) { runExhibit(b, "sec3") }

// BenchmarkSec5MPEGAggregate regenerates the §5 whole-decoder result:
// minimum-energy versus minimum-cycles configuration.
func BenchmarkSec5MPEGAggregate(b *testing.B) { runExhibit(b, "sec5") }

// BenchmarkAblationGrayVsBinary measures the address-bus switching of the
// Compress trace under Gray versus binary encoding — the paper's Gray-code
// assumption quantified.
func BenchmarkAblationGrayVsBinary(b *testing.B) {
	n := kernels.Compress()
	tr, err := n.Generate(loopir.SequentialLayout(n, 0))
	if err != nil {
		b.Fatal(err)
	}
	var grayBS, binBS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grayBS = bus.MeasureTrace(tr, bus.Gray).AddBS()
		binBS = bus.MeasureTrace(tr, bus.Binary).AddBS()
	}
	b.StopTimer()
	if grayBS >= binBS {
		b.Errorf("gray switching %v should be below binary %v", grayBS, binBS)
	}
	b.ReportMetric(grayBS, "gray-addbs")
	b.ReportMetric(binBS, "binary-addbs")
}

// BenchmarkAblationReplacement compares LRU, FIFO and random replacement
// on the Compress trace at a contended 4-way geometry.
func BenchmarkAblationReplacement(b *testing.B) {
	n := kernels.Compress()
	tr, err := n.Generate(loopir.SequentialLayout(n, 0))
	if err != nil {
		b.Fatal(err)
	}
	rates := map[string]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pol := range []cachesim.Replacement{cachesim.LRU, cachesim.FIFO, cachesim.Random} {
			cfg := cachesim.DefaultConfig(64, 8, 4)
			cfg.Replacement = pol
			st, err := cachesim.RunTraceFast(cfg, tr)
			if err != nil {
				b.Fatal(err)
			}
			rates[pol.String()] = st.MissRate()
		}
	}
	b.StopTimer()
	b.ReportMetric(rates["LRU"], "lru-missrate")
	b.ReportMetric(rates["FIFO"], "fifo-missrate")
	b.ReportMetric(rates["random"], "random-missrate")
}

// BenchmarkExploreSweep measures the full DefaultOptions Compress sweep
// (441 points, sequential layout) on the engine ladder: the per-point
// reference path, the workload-grouped batched engine (forced, one
// simulator per configuration), the inclusion engine (the default — one
// LRU stack pass per (line, sets) group), and the inclusion engine with
// worker parallelism. The numbers for the record live in
// BENCH_sweep.json; refresh them with `make bench-sweep`.
func BenchmarkExploreSweep(b *testing.B) {
	n := kernels.Compress()
	opts := core.DefaultOptions()
	opts.OptimizeLayout = false
	ctx := context.Background()

	run := func(b *testing.B, explore func() ([]core.Metrics, error)) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ms, err := explore()
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(len(ms)), "points")
			}
		}
	}
	batched := opts
	batched.Engine = core.EngineBatched
	b.Run("per-point", func(b *testing.B) {
		run(b, func() ([]core.Metrics, error) { return core.ExplorePerPointContext(ctx, n, opts) })
	})
	b.Run("batched", func(b *testing.B) {
		run(b, func() ([]core.Metrics, error) { return core.ExploreContext(ctx, n, batched) })
	})
	b.Run("inclusion", func(b *testing.B) {
		run(b, func() ([]core.Metrics, error) { return core.ExploreContext(ctx, n, opts) })
	})
	b.Run("inclusion-parallel", func(b *testing.B) {
		run(b, func() ([]core.Metrics, error) { return core.ExploreParallelContext(ctx, n, opts, 4) })
	})
	// One workload group (single tiling): group-level parallelism has
	// nothing to chew on, so the spare workers shard the group's pass
	// units instead — the chunk fan-out path.
	single := opts
	single.Tilings = []int{1}
	b.Run("single-group", func(b *testing.B) {
		run(b, func() ([]core.Metrics, error) { return core.ExploreContext(ctx, n, single) })
	})
	b.Run("single-group-fanout", func(b *testing.B) {
		run(b, func() ([]core.Metrics, error) { return core.ExploreParallelContext(ctx, n, single, 4) })
	})
}

// BenchmarkExploreDinTrace measures the external-trace pipeline end to
// end: a din text stream through ingestion, the Gray-code bus measurement
// and the full batched (T, L, S) sweep in one pass. SetBytes makes `go
// test -bench` print MB/s of din text; records/s is the trace-record
// throughput. The numbers for the record live in BENCH_trace.json;
// refresh them with `make bench-trace`.
func BenchmarkExploreDinTrace(b *testing.B) {
	n := kernels.Compress()
	tiled, err := loopir.TileAll(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := tiled.Generate(loopir.SequentialLayout(tiled, 0))
	if err != nil {
		b.Fatal(err)
	}
	var one bytes.Buffer
	records, err := extrace.WriteDin(&one, tr.Reader())
	if err != nil {
		b.Fatal(err)
	}
	// Repeat the kernel trace to a ~1M-record stream so ingest, not
	// setup, dominates what is measured.
	const repeats = 220
	payload := bytes.Repeat(one.Bytes(), repeats)
	records *= repeats

	run := func(b *testing.B, workers int) {
		b.Helper()
		opts := core.DefaultOptions()
		opts.Workers = workers
		b.SetBytes(int64(len(payload)))
		b.ReportAllocs()
		b.ResetTimer()
		var st extrace.IngestStats
		for i := 0; i < b.N; i++ {
			var ms []core.Metrics
			ms, st, err = core.ExploreTrace(bytes.NewReader(payload), opts, extrace.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(len(ms)), "points")
			}
		}
		b.StopTimer()
		if st.Records != records {
			b.Fatalf("ingested %d records, want %d", st.Records, records)
		}
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	}
	// workers=1 is the exact sequential engine; workers=2 adds the decode
	// pipeline plus a two-shard fan-out; workers=numcpu is the default an
	// ExploreTrace caller gets (Options.Workers = 0).
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	b.Run("workers=2", func(b *testing.B) { run(b, 2) })
	b.Run("workers=numcpu", func(b *testing.B) { run(b, runtime.NumCPU()) })
}

// BenchmarkExploreTraceSampled measures the billion-record-trace levers
// against the exact din baseline on one shared workload: a ~1.06M-record
// stream of 220 Compress-kernel segments at distinct 1 MiB offsets (so
// block-level sampling has a real population to draw from).
//
//   - din/exact        — text parse + exact sweep (the baseline)
//   - v2/exact         — columnar mxt v2 decode + exact sweep (bit-identical metrics)
//   - v2/sample=0.01   — SHARDS block sampling at R=0.01 (the ≥10x target)
//   - v2/dominant=0.05 — two-pass dominant-block prefilter at eps=0.05
func BenchmarkExploreTraceSampled(b *testing.B) {
	n := kernels.Compress()
	tiled, err := loopir.TileAll(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := tiled.Generate(loopir.SequentialLayout(tiled, 0))
	if err != nil {
		b.Fatal(err)
	}
	const segments = 220
	var din bytes.Buffer
	for k := 0; k < segments; k++ {
		for _, r := range tr.Refs() {
			din.WriteByte(byte('0' + r.Kind.DinLabel()))
			din.WriteByte(' ')
			b2 := strconv.AppendUint(nil, r.Addr+uint64(k)<<20, 16)
			din.Write(b2)
			if r.EffectiveSize() != 1 {
				din.WriteByte(' ')
				din.Write(strconv.AppendUint(nil, uint64(r.EffectiveSize()), 10))
			}
			din.WriteByte('\n')
		}
	}
	records := int64(tr.Len() * segments)
	var v2 bytes.Buffer
	if _, _, err := extrace.TranscodeV2(&v2, bytes.NewReader(din.Bytes()), extrace.Options{}); err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, payload []byte, mutate func(*core.Options)) {
		b.Helper()
		opts := core.DefaultOptions()
		if mutate != nil {
			mutate(&opts)
		}
		b.SetBytes(int64(len(payload)))
		b.ReportAllocs()
		b.ResetTimer()
		var sampled int64
		for i := 0; i < b.N; i++ {
			ms, st, err := core.ExploreTrace(bytes.NewReader(payload), opts, extrace.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if st.Records != records {
				b.Fatalf("ingested %d records, want %d", st.Records, records)
			}
			sampled = ms[0].SampledRecords
		}
		b.StopTimer()
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		if sampled > 0 {
			b.ReportMetric(float64(sampled), "simulated")
		}
	}
	b.Run("din/exact", func(b *testing.B) { run(b, din.Bytes(), nil) })
	b.Run("v2/exact", func(b *testing.B) { run(b, v2.Bytes(), nil) })
	b.Run("v2/sample=0.01", func(b *testing.B) {
		run(b, v2.Bytes(), func(o *core.Options) { o.SampleRate, o.SampleSeed = 0.01, 1 })
	})
	b.Run("v2/dominant=0.05", func(b *testing.B) {
		run(b, v2.Bytes(), func(o *core.Options) { o.DominantEps = 0.05 })
	})
}

// BenchmarkSimulatorThroughput measures raw simulator speed on a long
// synthetic trace — the substrate's own performance, useful when sizing
// larger sweeps.
func BenchmarkSimulatorThroughput(b *testing.B) {
	n := kernels.MatMul()
	tr, err := n.Generate(loopir.SequentialLayout(n, 0))
	if err != nil {
		b.Fatal(err)
	}
	cfg := cachesim.DefaultConfig(1024, 16, 4)
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cachesim.RunTraceFast(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtEnergyBreakdown regenerates the energy-component
// decomposition exhibit (why the energy optimum is interior).
func BenchmarkExtEnergyBreakdown(b *testing.B) { runExhibit(b, "ext-breakdown") }

// BenchmarkExtICache regenerates the §6 instruction-cache extension and
// the joint I+D budget selection.
func BenchmarkExtICache(b *testing.B) { runExhibit(b, "ext-icache") }

// BenchmarkExtStackDist regenerates the reuse-distance analysis and its
// exact cross-check against the simulator.
func BenchmarkExtStackDist(b *testing.B) { runExhibit(b, "ext-stackdist") }

// BenchmarkExtWarmPipeline regenerates the warm-pipeline-vs-cold-
// composition ablation of the §5 independence assumption.
func BenchmarkExtWarmPipeline(b *testing.B) { runExhibit(b, "ext-warm") }

// BenchmarkExtVictimVsLayout regenerates the hardware-vs-software
// conflict-elimination comparison (victim buffer vs §4.1 assignment).
func BenchmarkExtVictimVsLayout(b *testing.B) { runExhibit(b, "ext-victim") }

// BenchmarkExtScratchpad regenerates the cache-vs-scratchpad equal-
// capacity comparison.
func BenchmarkExtScratchpad(b *testing.B) { runExhibit(b, "ext-spm") }

// BenchmarkExtTwoLevel regenerates the two-level-vs-single-level
// comparison at equal on-chip capacity.
func BenchmarkExtTwoLevel(b *testing.B) { runExhibit(b, "ext-l2") }

// BenchmarkExtEmCrossover regenerates the bisection for the Em value at
// which the Compress energy optimum changes cache size.
func BenchmarkExtEmCrossover(b *testing.B) { runExhibit(b, "ext-crossover") }

// BenchmarkExtAutotune regenerates the transformation × cache codesign
// search on the transpose kernel.
func BenchmarkExtAutotune(b *testing.B) { runExhibit(b, "ext-autotune") }

// BenchmarkSearch compares the guided NSGA-II search (internal/search)
// against the exhaustive sweep on an enlarged configuration space —
// the search's reason to exist. The exhaustive baseline reports the
// space size; the guided runs report their evaluation spend and the
// fraction of the exhaustive Pareto hypervolume their archive recovers
// (hv_frac 1.0 = the evolved archive matches the true frontier). The
// numbers for the record live in BENCH_search.json; refresh them with
// `make bench-search`.
func BenchmarkSearch(b *testing.B) {
	n := kernels.Compress()
	opts := core.DefaultOptions()
	opts.CacheSizes = []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
		8192, 16384, 32768, 65536, 131072, 262144}
	opts.LineSizes = []int{4, 8, 16, 32, 64, 128, 256}
	opts.Assocs = []int{1, 2, 4, 8}
	opts.Tilings = make([]int, 64)
	for i := range opts.Tilings {
		opts.Tilings[i] = i + 1
	}
	opts = opts.Normalize()
	ctx := context.Background()
	workers := runtime.NumCPU()

	full, err := core.ExploreParallelContext(ctx, n, opts, workers)
	if err != nil {
		b.Fatal(err)
	}
	var refC, refE float64
	for _, m := range full {
		refC = max(refC, m.Cycles)
		refE = max(refE, m.EnergyNJ)
	}
	refC, refE = refC*1.01+1, refE*1.01+1
	hvFull := search.Hypervolume(core.ParetoFrontier(full), refC, refE)

	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ms, err := core.ExploreParallelContext(ctx, n, opts, workers)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(len(ms)), "points")
			}
		}
	})
	for _, evals := range []int{500, 1500} {
		b.Run("guided-"+strconv.Itoa(evals), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := search.Kernel(ctx, n, opts, search.Options{Seed: 7},
					search.Budget{MaxEvaluations: evals}, workers)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Evaluations), "evals")
					b.ReportMetric(float64(res.Generations), "gens")
					b.ReportMetric(search.Hypervolume(res.Archive, refC, refE)/hvFull, "hv_frac")
				}
			}
		})
	}
}

// BenchmarkIngest isolates the zero-copy ingestion levers from the
// simulator on a ~2.9M-record embedded-style workload transcoded to mxt
// v2 on disk: 220 Compress compute segments at distinct 1 MiB offsets
// (as in BenchmarkExploreTraceSampled), each followed by a
// device-polling idle phase — a tight loop rescanning one 256-byte
// buffer, the few-granule busy-wait pattern low-power firmware spends
// much of its time in. The polling phases are what the MXTI01 granule
// summaries can prove dead under sampling; the compute segments mostly
// cannot be skipped, so the indexed sweep still decodes real work:
//
//   - decode/bufio    — streaming chunk decode through bufio (the
//     non-seekable transport: gzip, stdin, HTTP bodies)
//   - decode/mmap     — the same artifact memory-mapped, columns decoded
//     in place (the *os.File fast path)
//   - sweep/full@sample=0.01    — full sweep, R=0.01 sampling, on an
//     index-less artifact: every chunk decoded, then filtered
//   - sweep/indexed@sample=0.01 — the same sweep on the indexed
//     artifact: chunks the MXTI01 granule summary proves dead are
//     skipped without decoding (bit-identical Metrics)
//
// records/s counts accounted records — for the indexed leg that is the
// effective rate including records skipped via the index.
func BenchmarkIngest(b *testing.B) {
	n := kernels.Compress()
	tiled, err := loopir.TileAll(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := tiled.Generate(loopir.SequentialLayout(tiled, 0))
	if err != nil {
		b.Fatal(err)
	}
	const segments = 220
	const pollRecords = 24576 // idle-phase length after each compute segment (~5:1 idle:compute duty cycle)
	var din bytes.Buffer
	for k := 0; k < segments; k++ {
		for _, r := range tr.Refs() {
			din.WriteByte(byte('0' + r.Kind.DinLabel()))
			din.WriteByte(' ')
			b2 := strconv.AppendUint(nil, r.Addr+uint64(k)<<20, 16)
			din.Write(b2)
			if r.EffectiveSize() != 1 {
				din.WriteByte(' ')
				din.Write(strconv.AppendUint(nil, uint64(r.EffectiveSize()), 10))
			}
			din.WriteByte('\n')
		}
		// Polling phase: reread a 256-byte status buffer word by word,
		// high in this segment's MiB so it never aliases compute data.
		pollBase := uint64(k)<<20 + 768<<10
		for j := 0; j < pollRecords; j++ {
			din.WriteString("0 ")
			din.Write(strconv.AppendUint(nil, pollBase+uint64(j%32)*8, 16))
			din.WriteByte('\n')
		}
	}
	records := int64((tr.Len() + pollRecords) * segments)

	dir := b.TempDir()
	indexedPath := filepath.Join(dir, "ingest.mxt")
	barePath := filepath.Join(dir, "ingest-noindex.mxt")
	writeV2 := func(path string, wo extrace.V2WriterOptions) {
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := extrace.TranscodeV2Options(f, bytes.NewReader(din.Bytes()), extrace.Options{}, wo); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
	writeV2(indexedPath, extrace.V2WriterOptions{})
	writeV2(barePath, extrace.V2WriterOptions{NoIndex: true})

	// drain measures pure decode throughput: open, stream every record,
	// no simulation. wrap shapes the transport (identity = *os.File =
	// mmap; nonSeekable forces the bufio path).
	drain := func(b *testing.B, path string, wrap func(io.Reader) io.Reader, wantMmap bool) {
		b.Helper()
		fi, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(fi.Size())
		b.ReportAllocs()
		b.ResetTimer()
		var st extrace.IngestStats
		for i := 0; i < b.N; i++ {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			rd := extrace.NewReader(wrap(f), extrace.Options{})
			buf := make([]memexplore.TraceRef, 4096)
			for {
				_, err := rd.Read(buf)
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			st = rd.Stats()
			rd.Close()
			f.Close()
		}
		b.StopTimer()
		if st.Records != records || st.Mmap != wantMmap {
			b.Fatalf("drained %d records (mmap=%v), want %d (mmap=%v)", st.Records, st.Mmap, records, wantMmap)
		}
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	}
	identity := func(r io.Reader) io.Reader { return r }
	asStream := func(r io.Reader) io.Reader { return struct{ io.Reader }{r} }
	b.Run("decode/bufio", func(b *testing.B) { drain(b, indexedPath, asStream, false) })
	b.Run("decode/mmap", func(b *testing.B) { drain(b, indexedPath, identity, true) })

	// sweep measures the full ExploreTrace at R=0.01 — the indexed
	// artifact skips dead chunks, the index-less control decodes all of
	// them — asserting bit-identical Metrics between the two.
	sweep := func(b *testing.B, path string, wantSkips bool) []core.Metrics {
		b.Helper()
		fi, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		opts := core.DefaultOptions()
		opts.SampleRate, opts.SampleSeed = 0.01, 1
		b.SetBytes(fi.Size())
		b.ReportAllocs()
		b.ResetTimer()
		var ms []core.Metrics
		var st extrace.IngestStats
		for i := 0; i < b.N; i++ {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			ms, st, err = core.ExploreTrace(f, opts, extrace.Options{})
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st.Records != records {
			b.Fatalf("ingested %d records, want %d", st.Records, records)
		}
		if wantSkips && st.ChunksSkipped == 0 {
			b.Fatal("indexed sweep skipped no chunks")
		}
		if !wantSkips && st.ChunksSkipped != 0 {
			b.Fatalf("control sweep skipped %d chunks", st.ChunksSkipped)
		}
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		b.ReportMetric(float64(st.ChunksSkipped), "chunks_skipped")
		return ms
	}
	var full, indexed []core.Metrics
	b.Run("sweep/full@sample=0.01", func(b *testing.B) { full = sweep(b, barePath, false) })
	b.Run("sweep/indexed@sample=0.01", func(b *testing.B) { indexed = sweep(b, indexedPath, true) })
	if full != nil && indexed != nil && !reflect.DeepEqual(full, indexed) {
		b.Fatal("indexed-skip sweep diverged from the full decode")
	}
}
