// On-chip organization shoot-out: for one kernel, compare every memory
// organization this repository models — single-level cache (the paper),
// cache + victim buffer, two-level L1+L2, and a software-managed
// scratchpad — on the paper's three metrics at comparable capacity.
//
//	go run ./examples/organizations [kernel]
package main

import (
	"fmt"
	"log"
	"os"

	"memexplore"
)

func main() {
	name := "sor"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	kern, err := memexplore.Kernel(name)
	if err != nil {
		log.Fatal(err)
	}
	params := memexplore.DefaultEnergyParams(memexplore.SRAMCatalog()[0])
	fmt.Printf("kernel %s — organizations at ≤ ~1 KiB on-chip (Em = %.2f nJ)\n\n",
		kern.Name, params.Main.EmNJ)
	fmt.Printf("%-28s %10s %12s %14s\n", "organization", "missrate", "cycles", "energy(nJ)")

	// 1. Single-level cache, the paper's exploration.
	opts := memexplore.DefaultOptions()
	opts.CacheSizes = []int{16, 32, 64, 128, 256, 512, 1024}
	single, err := memexplore.Explore(kern, opts)
	if err != nil {
		log.Fatal(err)
	}
	best, _ := memexplore.MinEnergy(single)
	fmt.Printf("%-28s %10.4f %12.0f %14.0f\n", "cache "+best.Label(), best.MissRate, best.Cycles, best.EnergyNJ)

	// 2. Same sweep with a 4-line victim buffer.
	vopts := opts
	vopts.VictimLines = 4
	victim, err := memexplore.Explore(kern, vopts)
	if err != nil {
		log.Fatal(err)
	}
	vbest, _ := memexplore.MinEnergy(victim)
	fmt.Printf("%-28s %10.4f %12.0f %14.0f\n", "cache+victim "+vbest.Label(), vbest.MissRate, vbest.Cycles, vbest.EnergyNJ)

	// 3. Two-level hierarchy over the same trace.
	tr, err := memexplore.GenerateTrace(kern, memexplore.SequentialLayout(kern, 0))
	if err != nil {
		log.Fatal(err)
	}
	two, err := memexplore.ExploreHierarchy(tr, []int{16, 32, 64}, []int{128, 256, 512, 1024}, 8, 16, 1, params)
	if err != nil {
		log.Fatal(err)
	}
	tbest := two[0]
	for _, m := range two {
		if m.EnergyNJ < tbest.EnergyNJ {
			tbest = m
		}
	}
	fmt.Printf("%-28s %10.4f %12.0f %14.0f\n", "two-level "+tbest.Config.String(),
		tbest.Stats.GlobalMissRate(), tbest.Cycles, tbest.EnergyNJ)

	// 4. Scratchpad with greedy array assignment.
	spm := memexplore.DefaultSPMParams(params.Main)
	sms, err := memexplore.ExploreSPM(kern, []int{64, 128, 256, 512, 1024, 2048}, spm)
	if err != nil {
		log.Fatal(err)
	}
	sbest := sms[0]
	for _, m := range sms {
		if m.EnergyNJ < sbest.EnergyNJ {
			sbest = m
		}
	}
	fmt.Printf("%-28s %10.4f %12.0f %14.0f\n",
		fmt.Sprintf("scratchpad %dB", sbest.CapacityBytes), 1-sbest.HitRate, sbest.Cycles, sbest.EnergyNJ)

	fmt.Println("\n(miss rate for the scratchpad is its off-chip access fraction;")
	fmt.Println(" the two-level row reports the global miss rate to main memory)")
}
