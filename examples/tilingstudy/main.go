// Tiling and associativity study (paper §4.2–4.3 / Figures 6–8): tile the
// paper's Example 3 transpose kernel across tile sizes and sweep the
// associativity of a fixed-size cache, showing the two findings the paper
// highlights — tiling helps until the tile exceeds the number of cache
// lines, and associativity buys hit rate at a hit-time cost.
//
//	go run ./examples/tilingstudy
package main

import (
	"fmt"
	"log"

	"memexplore"
)

func main() {
	kern, err := memexplore.Kernel("transpose")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(kern)

	// Tiling sweep at C64L8 (8 cache lines).
	opts := memexplore.DefaultOptions()
	opts.CacheSizes = []int{64}
	opts.LineSizes = []int{8}
	opts.Assocs = []int{1}
	opts.Tilings = []int{1, 2, 4, 8}
	// Tiling sizes beyond the line count need a wider space entry:
	explorer, err := memexplore.NewExplorer(kern, opts)
	if err != nil {
		log.Fatal(err)
	}
	cfg := memexplore.NewCacheConfig(64, 8, 1)
	fmt.Println("tiling at C64L8 (8 lines):")
	fmt.Printf("  %-6s %10s %10s %12s\n", "tile", "missrate", "cycles", "energy(nJ)")
	var best memexplore.Metrics
	for _, b := range []int{1, 2, 4, 8} {
		m, err := explorer.Evaluate(cfg, b)
		if err != nil {
			log.Fatal(err)
		}
		if best.Accesses == 0 || m.EnergyNJ < best.EnergyNJ {
			best = m
		}
		fmt.Printf("  B%-5d %10.4f %10.0f %12.0f\n", b, m.MissRate, m.Cycles, m.EnergyNJ)
	}
	fmt.Printf("best tile: B%d — the paper's rule of thumb is \"as large as the number of cache lines\"\n\n", best.Tiling)

	// Associativity sweep on the matmul kernel, where conflicts between
	// the three arrays are real.
	mm, err := memexplore.Kernel("matmul")
	if err != nil {
		log.Fatal(err)
	}
	saOpts := memexplore.DefaultOptions()
	saOpts.CacheSizes = []int{64}
	saOpts.LineSizes = []int{8}
	saOpts.Assocs = []int{1, 2, 4, 8}
	saOpts.Tilings = []int{1}
	saOpts.OptimizeLayout = false // leave the conflicts in for SA to absorb
	ms, err := memexplore.Explore(mm, saOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matmul associativity at C64L8 (sequential layout):")
	fmt.Printf("  %-6s %10s %10s %12s\n", "assoc", "missrate", "cycles", "energy(nJ)")
	for _, m := range ms {
		fmt.Printf("  SA%-4d %10.4f %10.0f %12.0f\n", m.Assoc, m.MissRate, m.Cycles, m.EnergyNJ)
	}
}
