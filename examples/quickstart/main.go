// Quickstart: explore the data-cache design space for the paper's
// Compress kernel and pick configurations under time and energy bounds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"memexplore"
)

func main() {
	// Every benchmark kernel of the paper is built in; see
	// memexplore.KernelNames() for the registry.
	kern, err := memexplore.Kernel("compress")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(kern) // pseudo-code of the loop nest

	// The analytical §3 model: how small can the cache be before reused
	// data starts conflicting?
	minSize, err := memexplore.MinCacheSize(kern, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytical minimum cache size at L=8: %d bytes\n\n", minSize)

	// Sweep (T, L, S, B) with the paper's defaults: Cypress CY7C main
	// memory (Em = 4.95 nJ) and the §4.1 off-chip assignment enabled.
	opts := memexplore.DefaultOptions()
	metrics, err := memexplore.Explore(kern, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated %d configurations\n", len(metrics))

	minE, _ := memexplore.MinEnergy(metrics)
	minC, _ := memexplore.MinCycles(metrics)
	fmt.Printf("minimum energy: %-12s %10.0f nJ  %10.0f cycles\n", minE.Label(), minE.EnergyNJ, minE.Cycles)
	fmt.Printf("minimum cycles: %-12s %10.0f nJ  %10.0f cycles\n", minC.Label(), minC.EnergyNJ, minC.Cycles)

	// The paper's bounded queries: if time is the hard constraint, find
	// the lowest-energy configuration that still meets it (and vice
	// versa).
	cycleBound := 1.5 * minC.Cycles
	if m, ok := memexplore.MinEnergyUnderCycleBound(metrics, cycleBound); ok {
		fmt.Printf("min energy under %.0f cycles: %s (%.0f nJ)\n", cycleBound, m.Label(), m.EnergyNJ)
	}
	energyBound := 1.5 * minE.EnergyNJ
	if m, ok := memexplore.MinCyclesUnderEnergyBound(metrics, energyBound); ok {
		fmt.Printf("min cycles under %.0f nJ: %s (%.0f cycles)\n", energyBound, m.Label(), m.Cycles)
	}

	// The full energy-time tradeoff.
	fmt.Println("\ncycles/energy Pareto frontier:")
	for _, m := range memexplore.ParetoFrontier(metrics) {
		fmt.Printf("  %-12s %10.0f cycles  %10.0f nJ\n", m.Label(), m.Cycles, m.EnergyNJ)
	}
}
