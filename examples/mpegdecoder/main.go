// MPEG decoder case study (paper §5): explore each of the nine decoder
// kernels individually, then compose them by trip count and show that the
// whole-program optimum differs both from the per-kernel optima and from
// the minimum-time configuration.
//
//	go run ./examples/mpegdecoder
package main

import (
	"fmt"
	"log"

	"memexplore"
)

func main() {
	decoder := memexplore.MPEGDecoder()

	opts := memexplore.DefaultOptions()
	opts.CacheSizes = []int{16, 32, 64, 128, 256, 512}
	opts.LineSizes = []int{4, 8, 16, 32}

	program, perKernel, err := memexplore.Aggregate(decoder, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-kernel minimum-energy configurations (Figure 10):")
	fmt.Printf("  %-14s %-12s %12s %12s\n", "kernel", "config", "energy(nJ)", "cycles")
	for _, k := range decoder {
		ms := perKernel[k.Nest.Name]
		best, ok := memexplore.MinEnergy(ms)
		if !ok {
			log.Fatalf("no metrics for %s", k.Nest.Name)
		}
		fmt.Printf("  %-14s %-12s %12.0f %12.0f\n", k.Nest.Name, best.Label(), best.EnergyNJ, best.Cycles)
	}

	minE, _ := memexplore.MinEnergy(program)
	minC, _ := memexplore.MinCycles(program)
	fmt.Println("\nwhole-decoder aggregate (trip-count weighted):")
	fmt.Printf("  minimum energy: %-12s %14.0f nJ %14.0f cycles\n", minE.Label(), minE.EnergyNJ, minE.Cycles)
	fmt.Printf("  minimum cycles: %-12s %14.0f nJ %14.0f cycles\n", minC.Label(), minC.EnergyNJ, minC.Cycles)

	fmt.Printf("\nenergy cost of choosing the time-optimal cache: %.1fx\n", minC.EnergyNJ/minE.EnergyNJ)
	fmt.Printf("time cost of choosing the energy-optimal cache:  %.1fx\n", minE.Cycles/minC.Cycles)

	// The §5 punchline: the program optimum is not any kernel's optimum.
	same := 0
	for _, k := range decoder {
		if best, ok := memexplore.MinEnergy(perKernel[k.Nest.Name]); ok && best.Label() == minE.Label() {
			same++
		}
	}
	fmt.Printf("\nkernels whose individual optimum equals the program optimum: %d of %d\n", same, len(decoder))
}
