// Instruction-cache extension demo (paper §6): lower a kernel to its
// instruction-fetch stream, explore I-cache configurations with the same
// three metrics, and merge the instruction- and data-cache sweeps under a
// shared on-chip capacity budget.
//
//	go run ./examples/icache
package main

import (
	"fmt"
	"log"

	"memexplore"
)

func main() {
	kern, err := memexplore.Kernel("compress")
	if err != nil {
		log.Fatal(err)
	}
	gen := memexplore.DefaultCodeGen()

	code, err := memexplore.CodeBytes(kern, gen)
	if err != nil {
		log.Fatal(err)
	}
	itr, err := memexplore.InstructionTrace(kern, gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s: %d bytes of code, %d instruction fetches per run\n\n",
		kern.Name, code, itr.Len())

	opts := memexplore.DefaultOptions()
	opts.CacheSizes = []int{16, 32, 64, 128, 256}
	opts.LineSizes = []int{4, 8, 16}
	opts.Assocs = []int{1, 2}
	opts.Tilings = []int{1}

	instr, err := memexplore.ExploreICache(kern, gen, opts)
	if err != nil {
		log.Fatal(err)
	}
	data, err := memexplore.Explore(kern, opts)
	if err != nil {
		log.Fatal(err)
	}

	iBest, _ := memexplore.MinEnergy(instr)
	dBest, _ := memexplore.MinEnergy(data)
	fmt.Printf("independent optima: I-cache %s (%.0f nJ), D-cache %s (%.0f nJ)\n\n",
		iBest.Label(), iBest.EnergyNJ, dBest.Label(), dBest.EnergyNJ)

	fmt.Println("joint selection under an on-chip budget:")
	fmt.Printf("  %-8s %-12s %-12s %14s\n", "budget", "I-cache", "D-cache", "energy(nJ)")
	for _, budget := range []int{32, 48, 64, 96, 128, 256, 0} {
		choice, ok := memexplore.ExploreJoint(instr, data, budget)
		label := fmt.Sprintf("%d B", budget)
		if budget == 0 {
			label = "none"
		}
		if !ok {
			fmt.Printf("  %-8s (no pair fits)\n", label)
			continue
		}
		fmt.Printf("  %-8s %-12s %-12s %14.0f\n",
			label, choice.Instr.Label(), choice.Data.Label(), choice.TotalEnergy())
	}
}
