// Custom-kernel demo: define a kernel in the textual nest syntax, parse
// it, analyze it with the §3 model, fix its layout with §4.1, and explore
// the cache space — the full workflow a downstream user follows for their
// own loop nest.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"memexplore"
)

// The kernel: a 2D box blur whose three row references collide in a
// direct-mapped cache when rows are a power-of-two apart (64-byte rows).
const src = `
// boxblur
int8 img[64][64]
int8 out[64][64]
for i = 1, 62
  for j = 1, 62
    img[i][j], img[i - 1][j], img[i + 1][j], img[i][j - 1], img[i][j + 1], out[i][j] (w)
`

func main() {
	kern, err := memexplore.ParseKernel(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(kern)

	// §3: how many cache lines does the reuse pattern need?
	for _, l := range []int{4, 8, 16} {
		lines, err := memexplore.MinCacheLines(kern, l)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L=%-3d minimum %d lines (%d bytes)\n", l, lines, lines*l)
	}

	// The power-of-two row stride makes the sequential layout collide;
	// §4.1 padding fixes it.
	cfg := memexplore.NewCacheConfig(64, 8, 1)
	seqTr, err := memexplore.GenerateTrace(kern, memexplore.SequentialLayout(kern, 0))
	if err != nil {
		log.Fatal(err)
	}
	seq, err := memexplore.Simulate(cfg, seqTr)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := memexplore.OptimizeLayout(kern, cfg.LineBytes, cfg.NumLines())
	if err != nil {
		log.Fatal(err)
	}
	optTr, err := memexplore.GenerateTrace(kern, plan.Layout)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := memexplore.Simulate(cfg, optTr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat %v:\n  sequential layout: miss rate %.4f (%d conflict misses)\n",
		cfg, seq.MissRate(), seq.ConflictMisses)
	fmt.Printf("  optimized layout:  miss rate %.4f (%d conflict misses)\n",
		opt.MissRate(), opt.ConflictMisses)
	for _, note := range plan.Notes {
		fmt.Println("  plan:", note)
	}

	// Full exploration with bounded selection.
	opts := memexplore.DefaultOptions()
	opts.CacheSizes = []int{32, 64, 128, 256, 512}
	ms, err := memexplore.Explore(kern, opts)
	if err != nil {
		log.Fatal(err)
	}
	minE, _ := memexplore.MinEnergy(ms)
	minC, _ := memexplore.MinCycles(ms)
	fmt.Printf("\nexplored %d configurations:\n", len(ms))
	fmt.Printf("  minimum energy: %s (%.0f nJ, %.0f cycles)\n", minE.Label(), minE.EnergyNJ, minE.Cycles)
	fmt.Printf("  minimum cycles: %s (%.0f cycles, %.0f nJ)\n", minC.Label(), minC.Cycles, minC.EnergyNJ)
}
