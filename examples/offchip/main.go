// Off-chip memory assignment demo (paper §4.1 / Figure 5): show how the
// conflict-avoiding data layout pads strides and bases, and measure the
// miss-rate reduction against the packed sequential layout with the cache
// simulator.
//
//	go run ./examples/offchip
package main

import (
	"fmt"
	"log"

	"memexplore"
)

func main() {
	// Part 1: the paper's own worked example — Compress with a 2-byte
	// line, 8-byte cache (4 sets). The planner reproduces the paper's
	// padding: the row stride grows from 32 to 36 bytes so the two
	// reference classes land two cache lines apart.
	compress, err := memexplore.Kernel("compress")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := memexplore.OptimizeLayout(compress, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Compress at line=2, sets=4 (the paper's §4.1 example):")
	for _, note := range plan.Notes {
		fmt.Println("  note:", note)
	}
	for name, p := range plan.Layout {
		fmt.Printf("  array %-4s base=%-4d strides=%v\n", name, p.Base, p.StrideBytes)
	}
	if v := plan.Verify(); len(v) == 0 {
		fmt.Println("  class windows verified disjoint")
	}

	// Part 2: Figure 5 — miss rates with and without the assignment.
	fmt.Println("\nFigure 5 — Compress miss rate, optimized vs sequential:")
	for _, geo := range []struct{ size, line int }{{32, 4}, {64, 8}, {128, 16}} {
		cfg := memexplore.NewCacheConfig(geo.size, geo.line, 1)
		plan, err := memexplore.OptimizeLayout(compress, geo.line, geo.size/geo.line)
		if err != nil {
			log.Fatal(err)
		}
		optTr, err := memexplore.GenerateTrace(compress, plan.Layout)
		if err != nil {
			log.Fatal(err)
		}
		seqTr, err := memexplore.GenerateTrace(compress, memexplore.SequentialLayout(compress, 0))
		if err != nil {
			log.Fatal(err)
		}
		opt, err := memexplore.Simulate(cfg, optTr)
		if err != nil {
			log.Fatal(err)
		}
		seq, err := memexplore.Simulate(cfg, seqTr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  C%-4dL%-3d optimized %.4f (%d conflicts)   sequential %.4f (%d conflicts)\n",
			geo.size, geo.line, opt.MissRate(), opt.ConflictMisses, seq.MissRate(), seq.ConflictMisses)
	}

	// Part 3: the Matrix Addition example — three same-pattern arrays
	// assigned to three different cache lines.
	matadd, err := memexplore.Kernel("matadd")
	if err != nil {
		log.Fatal(err)
	}
	plan, err = memexplore.OptimizeLayout(matadd, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMatrix Addition at line=2, sets=4 (Example 2):")
	for _, s := range plan.Slots {
		fmt.Printf("  array %-2s -> cache set %d (window %d lines)\n", s.Array, s.StartSet, s.Width)
	}
}
