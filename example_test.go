package memexplore_test

import (
	"fmt"
	"log"

	"memexplore"
)

// Example demonstrates the paper's core loop: sweep the configuration
// space for a kernel and pick the minimum-energy cache.
func Example() {
	kern, err := memexplore.Kernel("matadd")
	if err != nil {
		log.Fatal(err)
	}
	opts := memexplore.DefaultOptions()
	opts.CacheSizes = []int{16, 32, 64}
	opts.LineSizes = []int{4, 8}
	opts.Assocs = []int{1}
	opts.Tilings = []int{1}
	ms, err := memexplore.Explore(kern, opts)
	if err != nil {
		log.Fatal(err)
	}
	best, _ := memexplore.MinEnergy(ms)
	fmt.Println("minimum-energy configuration:", best.Label())
	// Output:
	// minimum-energy configuration: C16L4S1B1
}

// ExampleMinCacheSize shows the §3 analytical model on the paper's
// Compress kernel: two equivalence classes of two lines each, so the
// minimum cache is 4·L bytes.
func ExampleMinCacheSize() {
	kern, err := memexplore.Kernel("compress")
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range []int{4, 8} {
		size, err := memexplore.MinCacheSize(kern, l)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L=%d: %d bytes\n", l, size)
	}
	// Output:
	// L=4: 16 bytes
	// L=8: 32 bytes
}

// ExampleOptimizeLayout reproduces the paper's §4.1 worked example: at a
// 2-byte line and 4 sets, Compress's row stride is padded from 32 to 36
// bytes, which eliminates its conflict misses.
func ExampleOptimizeLayout() {
	kern, err := memexplore.Kernel("compress")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := memexplore.OptimizeLayout(kern, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("row stride:", plan.Layout["a"].StrideBytes[0])
	// Output:
	// row stride: 36
}

// ExampleSimulate runs a generated trace through the cache simulator and
// reads the 3C miss classification.
func ExampleSimulate() {
	kern, err := memexplore.Kernel("matadd")
	if err != nil {
		log.Fatal(err)
	}
	tr, err := memexplore.GenerateTrace(kern, memexplore.SequentialLayout(kern, 0))
	if err != nil {
		log.Fatal(err)
	}
	st, err := memexplore.Simulate(memexplore.NewCacheConfig(64, 8, 2), tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accesses:", st.Accesses)
	fmt.Println("conflict misses:", st.ConflictMisses) // a, b, c rows collide pairwise
	// Output:
	// accesses: 108
	// conflict misses: 4
}

// ExampleParseKernel defines a kernel in the textual nest syntax.
func ExampleParseKernel() {
	kern, err := memexplore.ParseKernel(`
// scale
int8 v[128]
for i = 0, 127
  v[i], v[i] (w)
`)
	if err != nil {
		log.Fatal(err)
	}
	refs, err := kern.References()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(kern.Name, "issues", refs, "references")
	// Output:
	// scale issues 256 references
}
