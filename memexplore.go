// Package memexplore is a reproduction of "Memory Exploration for Low
// Power, Embedded Systems" (Shiue & Chakrabarti, DAC 1999): a design-space
// exploration library that chooses an on-chip data-cache configuration —
// cache size T, line size L, set associativity S and tiling size B — for
// an embedded loop kernel, scored by three metrics: cache size, processor
// cycles, and energy.
//
// The package is a facade over the full implementation:
//
//   - a trace-driven cache simulator (direct-mapped and set-associative,
//     LRU/FIFO/random, 3C miss classification),
//   - an affine loop-nest IR that expresses the paper's benchmark kernels
//     and generates their memory-reference traces, with loop tiling,
//   - the paper's §2.2 cycle model and §2.3 energy model (Gray-coded
//     address-bus switching, SRAM main-memory catalog),
//   - the §3 analytical minimum-cache-size computation,
//   - the §4.1 off-chip memory assignment that eliminates conflict misses
//     for compatible access patterns,
//   - the MemExplore sweep with bounded selection and the §5 multi-kernel
//     aggregation.
//
// # Quick start
//
//	kern, _ := memexplore.Kernel("compress")
//	metrics, _ := memexplore.Explore(kern, memexplore.DefaultOptions())
//	best, _ := memexplore.MinEnergy(metrics)
//	fmt.Println(best.Label(), best.EnergyNJ)
//
// # Cancellation and typed errors
//
// Every explore entry point has a context-aware variant — ExploreContext,
// ExploreParallelContext, AggregateContext — that checks the context
// between config points, so long sweeps honor cancellation and deadlines;
// the plain variants are these with context.Background(). Failures at the
// API boundary are typed: ErrUnknownKernel (Kernel), *ErrInvalidOptions
// (Options.Validate and the explore entry points), and ErrCanceled (the
// context variants, wrapped alongside ctx.Err()). Options, ConfigPoint
// and Metrics carry stable JSON tags, and Options.Normalize puts options
// in the canonical form the memexplored service caches on.
//
// See the examples/ directory for complete programs, DESIGN.md for the
// system inventory and per-experiment index, and docs/SERVICE.md for the
// cmd/memexplored HTTP service over this API.
package memexplore

import (
	"context"
	"io"
	"memexplore/internal/autotune"
	"memexplore/internal/cachesim"
	"memexplore/internal/core"
	"memexplore/internal/energy"
	"memexplore/internal/extrace"
	"memexplore/internal/hierarchy"
	"memexplore/internal/icache"
	"memexplore/internal/kernels"
	"memexplore/internal/layout"
	"memexplore/internal/loopir"
	"memexplore/internal/reuse"
	"memexplore/internal/scratchpad"
	"memexplore/internal/search"
	"memexplore/internal/stackdist"
	"memexplore/internal/trace"
)

// Core exploration types.
type (
	// Metrics is the evaluation of one kernel under one configuration:
	// miss rate, cycles and energy for a (T, L, S, B) point.
	Metrics = core.Metrics
	// Options parameterizes an exploration sweep.
	Options = core.Options
	// ConfigPoint is one (T, L, S, B) point of the sweep space.
	ConfigPoint = core.ConfigPoint
	// Explorer evaluates configurations for one kernel with trace caching.
	Explorer = core.Explorer
	// WeightedKernel pairs a kernel with its §5 trip count.
	WeightedKernel = core.WeightedKernel
)

// Workload types.
type (
	// Nest is an affine loop nest — the workload description.
	Nest = loopir.Nest
	// Array declares a named array of a nest.
	Array = loopir.Array
	// Loop is one loop level of a nest.
	Loop = loopir.Loop
	// Ref is an array reference in a nest body.
	Ref = loopir.Ref
	// Expr is an affine index expression.
	Expr = loopir.Expr
	// Layout places a nest's arrays in off-chip memory.
	Layout = loopir.Layout
	// Placement positions one array (base address and padded strides).
	Placement = loopir.Placement
	// Trace is a memory-reference trace.
	Trace = trace.Trace
	// TraceRef is one memory reference.
	TraceRef = trace.Ref
)

// Cache-simulation types.
type (
	// CacheConfig describes a cache organization.
	CacheConfig = cachesim.Config
	// CacheStats reports simulation results.
	CacheStats = cachesim.Stats
	// Cache is a simulator instance for incremental use.
	Cache = cachesim.Cache
)

// Model types.
type (
	// EnergyParams holds the §2.3 energy-model coefficients.
	EnergyParams = energy.Params
	// SRAM describes an off-chip memory part (the Em source).
	SRAM = energy.SRAM
	// LayoutPlan is the result of the §4.1 assignment, with bookkeeping.
	LayoutPlan = layout.Plan
)

// Typed errors for the API boundary (see the package comment).
var (
	// ErrUnknownKernel is wrapped by Kernel for unregistered names.
	ErrUnknownKernel = kernels.ErrUnknownKernel
	// ErrCanceled is wrapped by the *Context entry points when their
	// context is canceled or expires mid-sweep.
	ErrCanceled = core.ErrCanceled
)

// ErrInvalidOptions is the structured validation error returned by
// Options.Validate and the explore entry points; retrieve it with
// errors.As to learn the offending wire field.
type ErrInvalidOptions = core.ErrInvalidOptions

// DefaultOptions returns the paper's sweep parameters: T ∈ 16..1024 bytes,
// L ∈ 4..64, S ∈ {1,2,4,8}, B ∈ {1..16}, §4.1 layout optimization on, and
// the Cypress CY7C main memory (Em = 4.95 nJ).
func DefaultOptions() Options { return core.DefaultOptions() }

// Explore runs the MemExplore sweep (§1 algorithm) for a kernel and
// returns one Metrics per legal configuration. Non-classified sweeps run
// on the workload-grouped batched engine: each distinct trace is
// generated once and simulated for all of its cache configurations in a
// single pass (results are bit-identical to per-point evaluation).
func Explore(n *Nest, opts Options) ([]Metrics, error) { return core.Explore(n, opts) }

// ExploreContext is Explore with cancellation: the context is checked
// between workload groups and every few thousand references inside a
// batch pass, and a canceled or expired context yields an error wrapping
// both ErrCanceled and ctx.Err().
func ExploreContext(ctx context.Context, n *Nest, opts Options) ([]Metrics, error) {
	return core.ExploreContext(ctx, n, opts)
}

// NewExplorer builds an incremental explorer for one kernel.
func NewExplorer(n *Nest, opts Options) (*Explorer, error) { return core.NewExplorer(n, opts) }

// Aggregate composes per-kernel sweeps into whole-program metrics using
// the §5 trip-count weighting.
func Aggregate(ks []WeightedKernel, opts Options) (program []Metrics, perKernel map[string][]Metrics, err error) {
	return core.Aggregate(ks, opts)
}

// AggregateContext is Aggregate with cancellation threaded through every
// per-kernel sweep.
func AggregateContext(ctx context.Context, ks []WeightedKernel, opts Options) (program []Metrics, perKernel map[string][]Metrics, err error) {
	return core.AggregateContext(ctx, ks, opts)
}

// Selection queries (§1, §3): the paper's bounded and unbounded optima.
func MinEnergy(ms []Metrics) (Metrics, bool) { return core.MinEnergy(ms) }

// MinCycles returns the minimum-time configuration.
func MinCycles(ms []Metrics) (Metrics, bool) { return core.MinCycles(ms) }

// MinEnergyUnderCycleBound returns the minimum-energy configuration whose
// cycle count does not exceed the bound ("time is the hard constraint").
func MinEnergyUnderCycleBound(ms []Metrics, bound float64) (Metrics, bool) {
	return core.MinEnergyUnderCycleBound(ms, bound)
}

// MinCyclesUnderEnergyBound returns the minimum-time configuration whose
// energy does not exceed the bound ("energy is the hard constraint").
func MinCyclesUnderEnergyBound(ms []Metrics, boundNJ float64) (Metrics, bool) {
	return core.MinCyclesUnderEnergyBound(ms, boundNJ)
}

// ParetoFrontier returns the Pareto-optimal (cycles, energy) tradeoff.
func ParetoFrontier(ms []Metrics) []Metrics { return core.ParetoFrontier(ms) }

// Kernel returns a benchmark kernel by name (see KernelNames).
func Kernel(name string) (*Nest, error) { return kernels.ByName(name) }

// KernelNames lists the registered benchmark kernels.
func KernelNames() []string { return kernels.Names() }

// PaperBenchmarks returns the five §2–4 kernels: Compress, Matrix
// Multiplication, PDE, SOR, Dequant.
func PaperBenchmarks() []*Nest { return kernels.PaperBenchmarks() }

// MPEGDecoder returns the nine §5 decoder kernels with their per-frame
// trip counts, ready for Aggregate.
func MPEGDecoder() []WeightedKernel {
	var ws []WeightedKernel
	for _, k := range kernels.MPEGKernels() {
		ws = append(ws, WeightedKernel{Nest: k.Nest, Trip: k.Trip})
	}
	return ws
}

// SequentialLayout packs a nest's arrays contiguously — the paper's
// unoptimized baseline.
func SequentialLayout(n *Nest, base uint64) Layout { return loopir.SequentialLayout(n, base) }

// OptimizeLayout computes the §4.1 conflict-avoiding off-chip assignment
// for a cache with the given line size and set count.
func OptimizeLayout(n *Nest, lineBytes, sets int) (*LayoutPlan, error) {
	return layout.Optimize(n, lineBytes, sets)
}

// Tile applies rectangular loop tiling (§4.2) to every level of the nest.
func Tile(n *Nest, size int) (*Nest, error) { return loopir.TileAll(n, size) }

// GenerateTrace executes a nest under a layout and returns its
// memory-reference trace.
func GenerateTrace(n *Nest, l Layout) (*Trace, error) { return n.Generate(l) }

// NewCacheConfig returns the paper's baseline cache policies
// (write-allocate, write-back, LRU) for a (T, L, S) triple.
func NewCacheConfig(sizeBytes, lineBytes, assoc int) CacheConfig {
	return cachesim.DefaultConfig(sizeBytes, lineBytes, assoc)
}

// Simulate runs a trace through a cache of the given configuration with
// 3C miss classification.
func Simulate(cfg CacheConfig, tr *Trace) (CacheStats, error) { return cachesim.RunTrace(cfg, tr) }

// NewCache builds an incremental cache simulator.
func NewCache(cfg CacheConfig) (*Cache, error) { return cachesim.New(cfg) }

// MinCacheSize returns the §3 analytical minimum cache size in bytes for
// the given line size.
func MinCacheSize(n *Nest, lineBytes int) (int, error) { return reuse.MinCacheSize(n, lineBytes) }

// MinCacheLines returns the §3 analytical minimum number of cache lines.
func MinCacheLines(n *Nest, lineBytes int) (int, error) { return reuse.MinLines(n, lineBytes) }

// DefaultEnergyParams returns the §2.3 coefficients for the given
// main-memory part.
func DefaultEnergyParams(main SRAM) EnergyParams { return energy.DefaultParams(main) }

// SRAMCatalog returns the three main-memory parts the paper uses
// (Em = 4.95, 2.31 and 43.56 nJ).
func SRAMCatalog() []SRAM { return energy.Catalog() }

// Extension types: reuse-distance analysis and the §6 instruction-cache
// extension.
type (
	// EnergyBreakdown splits a Metrics' energy into the §2.3 components.
	EnergyBreakdown = core.EnergyBreakdown
	// ReuseHistogram is the LRU stack-distance profile of a trace.
	ReuseHistogram = stackdist.Histogram
	// CodeGen fixes the code-layout model for instruction-cache studies.
	CodeGen = icache.CodeGen
	// JointChoice is a combined instruction+data cache selection.
	JointChoice = icache.JointChoice
)

// MinEDP returns the configuration with the lowest energy–delay product.
func MinEDP(ms []Metrics) (Metrics, bool) { return core.MinEDP(ms) }

// Engine selects the sweep execution engine (Options.Engine). Results
// are bit-identical across engines; the knob exists for debugging and
// benchmarking.
type Engine = core.Engine

// Sweep engines for Options.Engine.
const (
	// EngineAuto picks the fastest exact engine (the default).
	EngineAuto = core.EngineAuto
	// EnginePerPoint forces one full trace pass per configuration point.
	EnginePerPoint = core.EnginePerPoint
	// EngineBatched forces the workload-grouped batched engine without
	// inclusion grouping.
	EngineBatched = core.EngineBatched
	// EngineInclusion is EngineAuto under its explicit name: inclusion
	// grouping with per-configuration fallback.
	EngineInclusion = core.EngineInclusion
)

// ParseEngine parses an engine name: "auto" (or ""), "per-point",
// "batched", "inclusion".
func ParseEngine(s string) (Engine, error) { return core.ParseEngine(s) }

// SweepPlan describes how a sweep partitions into simulation pass units
// before it runs: trace-generation workloads, inclusion groups (one
// per-set LRU stack pass covering every associativity of a (line, sets)
// geometry) and per-configuration fallbacks. Options.Plan computes it.
type SweepPlan = core.SweepPlan

// TraceSweepPlan is Options.Plan for an external-trace sweep (the options
// restricted to what a recorded trace can vary, a single trace pass).
func TraceSweepPlan(opts Options) (SweepPlan, error) { return core.TraceSweepPlan(opts) }

// ExploreParallel is Explore with the batched sweep's workload groups
// distributed over worker goroutines sharing one trace cache; results
// are identical to Explore.
func ExploreParallel(n *Nest, opts Options, workers int) ([]Metrics, error) {
	return core.ExploreParallel(n, opts, workers)
}

// ExploreParallelContext is ExploreParallel with cancellation checked by
// every worker between workload groups (and inside each batch pass).
func ExploreParallelContext(ctx context.Context, n *Nest, opts Options, workers int) ([]Metrics, error) {
	return core.ExploreParallelContext(ctx, n, opts, workers)
}

// EvaluateTrace scores an arbitrary pre-generated trace under one cache
// configuration with the §2.2/§2.3 models.
func EvaluateTrace(tr *Trace, cfg CacheConfig, tiling int, p EnergyParams, classify bool) (Metrics, error) {
	return core.EvaluateTrace(tr, cfg, tiling, p, classify)
}

// TraceAddBS measures the Gray-coded address-bus switching per access of
// a trace (the Add_bs input of the §2.3 energy model). It depends only
// on the trace: measure once, then score many configurations with
// EvaluateTraceMeasured.
func TraceAddBS(tr *Trace) float64 { return core.TraceAddBS(tr) }

// EvaluateTraceMeasured is EvaluateTrace with the trace's AddBS supplied
// by the caller (see TraceAddBS), avoiding a re-scan of the trace per
// configuration when one trace is scored under many caches.
func EvaluateTraceMeasured(tr *Trace, addBS float64, cfg CacheConfig, tiling int, p EnergyParams, classify bool) (Metrics, error) {
	return core.EvaluateTraceMeasured(tr, addBS, cfg, tiling, p, classify)
}

// WarmTrace composes the kernels into one shared-cache pipeline trace
// (trips divided by scale), the warm counterpart of Aggregate's cold
// composition.
func WarmTrace(ks []WeightedKernel, scale int64) (*Trace, error) {
	return core.WarmTrace(ks, scale)
}

// ComputeReuse builds the reuse-distance histogram of a trace at the
// given line size; Histogram.MissRate gives the fully associative LRU
// miss rate at any capacity in one pass.
func ComputeReuse(tr *Trace, lineBytes int) (*ReuseHistogram, error) {
	return stackdist.Compute(tr, lineBytes)
}

// DefaultCodeGen returns the 32-bit embedded code-layout model used by
// the instruction-cache extension.
func DefaultCodeGen() CodeGen { return icache.DefaultCodeGen() }

// InstructionTrace lowers a loop nest to its instruction-fetch trace
// under the code model.
func InstructionTrace(n *Nest, g CodeGen) (*Trace, error) { return icache.FetchTrace(n, g) }

// CodeBytes returns a nest's static code footprint under the code model.
func CodeBytes(n *Nest, g CodeGen) (int, error) { return icache.CodeBytes(n, g) }

// ExploreICache sweeps instruction-cache configurations for a kernel —
// the paper's §6 extension.
func ExploreICache(n *Nest, g CodeGen, opts Options) ([]Metrics, error) {
	return icache.Explore(n, g, opts)
}

// ExploreJoint merges instruction- and data-cache sweeps under a shared
// on-chip capacity budget (0 = unbounded).
func ExploreJoint(instr, data []Metrics, budgetBytes int) (JointChoice, bool) {
	return icache.ExploreJoint(instr, data, budgetBytes)
}

// ParseKernel parses a loop nest from its textual form — the same syntax
// Nest.String() prints (see internal/loopir.Parse for the grammar). It
// lets the CLI tools and downstream users define their own kernels in
// plain text files.
func ParseKernel(src string) (*Nest, error) { return loopir.Parse(src) }

// ParseKernelReader is ParseKernel over an io.Reader.
func ParseKernelReader(r io.Reader) (*Nest, error) { return loopir.ParseReader(r) }

// Unroll unrolls a nest's innermost loop by the given factor.
func Unroll(n *Nest, factor int) (*Nest, error) { return loopir.Unroll(n, factor) }

// Interchange swaps two loop levels of a nest.
func Interchange(n *Nest, a, b int) (*Nest, error) { return loopir.Interchange(n, a, b) }

// AnalyzeTrace profiles a trace: access mix, footprint, stride histogram.
func AnalyzeTrace(tr *Trace) TraceProfile { return trace.Analyze(tr) }

// TraceProfile summarizes a trace's statistical shape.
type TraceProfile = trace.Profile

// External-trace ingestion types (internal/extrace): streaming readers for
// recorded application traces in the textual din format or the mxt binary
// format, with transparent gzip decompression.
type (
	// TraceIngestOptions bounds and shapes trace ingestion: record and
	// line-length limits and the malformed-record policy.
	TraceIngestOptions = extrace.Options
	// TraceIngestStats is the single-pass statistical profile accumulated
	// while a trace streams through ingestion.
	TraceIngestStats = extrace.IngestStats
	// TraceParseError pinpoints a malformed trace record (line number for
	// din, byte offset for both formats); retrieve it with errors.As.
	TraceParseError = extrace.ParseError
	// TraceReader streams records from an external trace with constant
	// memory; its Read fills []TraceRef chunks.
	TraceReader = extrace.Reader
	// TraceWriterOptions shapes mxt v2 encoding: transcode-time spatial
	// sampling (rate and seed recorded in the artifact's index footer so
	// sweeps rescale correctly) and index suppression.
	TraceWriterOptions = extrace.V2WriterOptions
	// TraceIndex is the parsed MXTI01 index footer of an mxt v2 artifact:
	// per-chunk byte frames, record counts and granule summaries, the
	// encode-time ingest profile, and any transcode-time sampling
	// parameters.
	TraceIndex = extrace.TraceIndex
)

// External-trace typed errors.
var (
	// ErrEmptyTrace is returned by the trace-sweep entry points when the
	// stream ends without a single accepted record.
	ErrEmptyTrace = core.ErrEmptyTrace
	// ErrTraceRecordLimit is wrapped by ingestion when a stream exceeds
	// TraceIngestOptions.MaxRecords.
	ErrTraceRecordLimit = extrace.ErrRecordLimit
)

// ExploreTrace runs the MemExplore sweep over an external application
// trace streamed from r (din or binary, gzip transparently detected) in
// one sequential, constant-memory pass: every (T, L, S) configuration and
// the Gray-code bus measurement consume the stream chunk by chunk, so the
// trace is never materialized and its length is unbounded. Tiling and
// layout optimization do not apply to recorded traces (they are
// generation-time transforms); the returned IngestStats profiles whatever
// was ingested, even when an error is returned.
func ExploreTrace(r io.Reader, opts Options, ing TraceIngestOptions) ([]Metrics, TraceIngestStats, error) {
	return core.ExploreTrace(r, opts, ing)
}

// ExploreTraceReader is ExploreTrace with cancellation: the context is
// checked at every chunk boundary, and a canceled or expired context
// yields an error wrapping both ErrCanceled and ctx.Err().
func ExploreTraceReader(ctx context.Context, r io.Reader, opts Options, ing TraceIngestOptions) ([]Metrics, TraceIngestStats, error) {
	return core.ExploreTraceReader(ctx, r, opts, ing)
}

// NewTraceReader opens a streaming reader over an external trace for
// callers that want the records themselves rather than a sweep.
func NewTraceReader(r io.Reader, ing TraceIngestOptions) *TraceReader {
	return extrace.NewReader(r, ing)
}

// WriteDinTrace encodes a trace in the textual din format (see
// docs/TRACE_FORMAT.md) and reports the record count.
func WriteDinTrace(w io.Writer, tr *Trace) (int64, error) {
	return extrace.WriteDin(w, tr.Reader())
}

// WriteBinaryTrace encodes a trace in the compact mxt binary format; the
// encoding round-trips every TraceRef bit-exactly through NewTraceReader.
func WriteBinaryTrace(w io.Writer, tr *Trace) (int64, error) {
	return extrace.WriteBinary(w, tr.Reader())
}

// WriteBinaryV2Trace encodes a trace in the columnar mxt v2 format —
// delta-compressed address column, packed kind stream, per-chunk CRC —
// the preferred on-disk form for very large traces. Like mxt v1 it
// round-trips every TraceRef bit-exactly through NewTraceReader.
func WriteBinaryV2Trace(w io.Writer, tr *Trace) (int64, error) {
	return extrace.WriteBinaryV2(w, tr.Reader())
}

// TranscodeTraceV2 re-encodes any readable trace stream (din or mxt,
// gzip transparently detected) into the columnar mxt v2 format, writing
// to w and reporting the encoded byte count plus the ingest profile of
// the source stream.
func TranscodeTraceV2(w io.Writer, r io.Reader, ing TraceIngestOptions) (int64, TraceIngestStats, error) {
	return extrace.TranscodeV2(w, r, ing)
}

// TranscodeTraceV2Options is TranscodeTraceV2 with writer options:
// transcode-time spatial sampling (the artifact keeps a deterministic
// ~rate fraction of the address space, recorded in its MXTI01 footer so
// sweeps rescale automatically and refuse conflicting re-sampling) and
// index suppression. Re-encoding an already-sampled artifact is refused.
func TranscodeTraceV2Options(w io.Writer, r io.Reader, ing TraceIngestOptions, wo TraceWriterOptions) (int64, TraceIngestStats, error) {
	return extrace.TranscodeV2Options(w, r, ing, wo)
}

// ProbeTraceIndex reads the MXTI01 index footer of a seekable mxt v2
// stream without consuming it (the read offset is restored). It returns
// nil for any non-v2, gzipped, non-seekable, index-less or corrupt
// input — probing never fails.
func ProbeTraceIndex(r io.Reader) *TraceIndex {
	return extrace.ProbeIndex(r)
}

// Scratchpad types and helpers (the Panda/Dutt on-chip alternative).
type (
	// SPMParams fixes the scratchpad cost model.
	SPMParams = scratchpad.Params
	// SPMAssignment records which arrays live on-chip.
	SPMAssignment = scratchpad.Assignment
	// SPMMetrics is the scratchpad evaluation triple.
	SPMMetrics = scratchpad.Metrics
)

// DefaultSPMParams derives scratchpad parameters consistent with the
// cache energy model for the given main memory.
func DefaultSPMParams(main SRAM) SPMParams { return scratchpad.DefaultParams(main) }

// AssignSPM packs a nest's arrays into a scratchpad of the given capacity
// greedily by access density.
func AssignSPM(n *Nest, capacityBytes int) (SPMAssignment, error) {
	return scratchpad.Assign(n, capacityBytes)
}

// ExploreSPM evaluates the greedy scratchpad assignment at every candidate
// capacity.
func ExploreSPM(n *Nest, capacities []int, p SPMParams) ([]SPMMetrics, error) {
	return scratchpad.Explore(n, capacities, p)
}

// Two-level hierarchy types and helpers (the ext-l2 extension).
type (
	// HierarchyConfig is an (L1, L2) cache pair.
	HierarchyConfig = hierarchy.Config
	// HierarchyMetrics is the two-level evaluation result.
	HierarchyMetrics = hierarchy.Metrics
	// HierarchyStats carries per-level simulation statistics.
	HierarchyStats = hierarchy.Stats
)

// SimulateHierarchy runs a trace through an L1+L2 pair.
func SimulateHierarchy(cfg HierarchyConfig, tr *Trace) (HierarchyStats, error) {
	return hierarchy.Run(cfg, tr)
}

// EvaluateHierarchy scores a trace on a two-level configuration with the
// extended cycle and energy models.
func EvaluateHierarchy(cfg HierarchyConfig, tr *Trace, p EnergyParams) (HierarchyMetrics, error) {
	return hierarchy.Evaluate(cfg, tr, p)
}

// ExploreHierarchy sweeps (L1, L2) size pairs over a trace.
func ExploreHierarchy(tr *Trace, l1Sizes, l2Sizes []int, l1Line, l2Line, assoc int, p EnergyParams) ([]HierarchyMetrics, error) {
	return hierarchy.Explore(tr, l1Sizes, l2Sizes, l1Line, l2Line, assoc, p)
}

// Fuse merges two nests with identical loop structures into one (classic
// loop fusion).
func Fuse(a, b *Nest) (*Nest, error) { return loopir.Fuse(a, b) }

// Replacement policies for CacheConfig / Options.Replacement.
const (
	// LRU evicts the least recently used line (the paper's policy).
	LRU = cachesim.LRU
	// FIFO evicts the oldest-filled line.
	FIFO = cachesim.FIFO
	// RandomReplacement evicts a pseudo-random line (deterministic).
	RandomReplacement = cachesim.Random
)

// Autotune types and helpers (the codesign extension).
type (
	// TuneConfig parameterizes the transformation × cache search.
	TuneConfig = autotune.Config
	// TuneResult scores one transformed variant with its best cache pair.
	TuneResult = autotune.Result
)

// DefaultTuneConfig returns a sensible search space.
func DefaultTuneConfig() TuneConfig { return autotune.DefaultConfig() }

// Tune searches loop-transformation variants × data cache × instruction
// cache for the minimum total energy under an optional shared budget,
// returning all scored variants and the index of the best.
func Tune(n *Nest, cfg TuneConfig) ([]TuneResult, int, error) { return autotune.Tune(n, cfg) }

// Guided multi-objective search types and helpers (internal/search):
// budgeted NSGA-II evolution over the configuration space for spaces too
// large to sweep exhaustively. See docs/SEARCH.md.
type (
	// SearchOptions parameterizes the evolutionary operators; the seed
	// makes runs bit-reproducible at any worker count.
	SearchOptions = search.Options
	// SearchBudget bounds a search run by evaluations, generations,
	// and/or wall clock (at least one bound is required).
	SearchBudget = search.Budget
	// SearchResult is a finished run: the Pareto archive over every
	// evaluated point plus the evaluation accounting and stop reason.
	SearchResult = search.Result
	// ErrInvalidSearch reports invalid search parameters with the
	// offending wire field named; retrieve it with errors.As.
	ErrInvalidSearch = search.InvalidError
)

// DefaultSearchOptions returns the default operator parameters.
func DefaultSearchOptions() SearchOptions { return search.DefaultOptions() }

// SearchKernel runs a budgeted NSGA-II search over a kernel workload's
// configuration space; workers parallelizes the inner sweeps without
// affecting the archive.
func SearchKernel(ctx context.Context, n *Nest, opts Options, sopts SearchOptions, budget SearchBudget, workers int) (SearchResult, error) {
	return search.Kernel(ctx, n, opts, sopts, budget, workers)
}

// SearchTrace runs the search over a recorded trace. The source must be
// seekable (each generation rewinds and streams it); tiling and layout
// optimization are pinned off as in ExploreTrace.
func SearchTrace(ctx context.Context, src io.ReadSeeker, opts Options, ing TraceIngestOptions, sopts SearchOptions, budget SearchBudget) (SearchResult, TraceIngestStats, error) {
	return search.Trace(ctx, src, opts, ing, sopts, budget)
}

// SearchHypervolume measures the (cycles, energy) area a frontier
// dominates under the given reference point — the scalar archive-quality
// metric used to compare search strategies.
func SearchHypervolume(ms []Metrics, refCycles, refEnergyNJ float64) float64 {
	return search.Hypervolume(ms, refCycles, refEnergyNJ)
}

// Dominates reports whether a Pareto-dominates b in the (cycles, energy)
// plane: no worse in both objectives, strictly better in at least one.
func Dominates(a, b Metrics) bool { return core.Dominates(a, b) }
