package memexplore_test

import (
	"math"
	"testing"

	"memexplore"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	kern, err := memexplore.Kernel("compress")
	if err != nil {
		t.Fatal(err)
	}
	opts := memexplore.DefaultOptions()
	opts.CacheSizes = []int{16, 32, 64, 128}
	opts.Assocs = []int{1, 2}
	opts.Tilings = []int{1}
	ms, err := memexplore.Explore(kern, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no metrics")
	}
	minE, ok := memexplore.MinEnergy(ms)
	if !ok {
		t.Fatal("no energy optimum")
	}
	minC, ok := memexplore.MinCycles(ms)
	if !ok {
		t.Fatal("no cycle optimum")
	}
	if minE.EnergyNJ > minC.EnergyNJ {
		t.Error("MinEnergy worse than MinCycles on energy")
	}
	if _, ok := memexplore.MinEnergyUnderCycleBound(ms, math.Inf(1)); !ok {
		t.Error("unbounded query must succeed")
	}
	if len(memexplore.ParetoFrontier(ms)) == 0 {
		t.Error("empty Pareto frontier")
	}
}

func TestFacadeKernelRegistry(t *testing.T) {
	names := memexplore.KernelNames()
	if len(names) < 10 {
		t.Errorf("expected ≥10 kernels, got %d", len(names))
	}
	if len(memexplore.PaperBenchmarks()) != 5 {
		t.Error("want 5 paper benchmarks")
	}
	if len(memexplore.MPEGDecoder()) != 9 {
		t.Error("want 9 MPEG kernels")
	}
	if _, err := memexplore.Kernel("definitely-not-a-kernel"); err == nil {
		t.Error("unknown kernel should fail")
	}
}

func TestFacadeSimulationPath(t *testing.T) {
	kern, err := memexplore.Kernel("matadd")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := memexplore.GenerateTrace(kern, memexplore.SequentialLayout(kern, 0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := memexplore.NewCacheConfig(64, 8, 2)
	st, err := memexplore.Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != uint64(tr.Len()) {
		t.Errorf("accesses %d, trace %d", st.Accesses, tr.Len())
	}
	c, err := memexplore.NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	if c.Stats() != st {
		t.Error("incremental cache diverges from Simulate")
	}
}

func TestFacadeAnalyticalAndLayout(t *testing.T) {
	kern, err := memexplore.Kernel("compress")
	if err != nil {
		t.Fatal(err)
	}
	size, err := memexplore.MinCacheSize(kern, 8)
	if err != nil {
		t.Fatal(err)
	}
	if size != 32 {
		t.Errorf("min cache size = %d, want 32 (4 lines × 8)", size)
	}
	lines, err := memexplore.MinCacheLines(kern, 8)
	if err != nil || lines != 4 {
		t.Errorf("min lines = %d, %v", lines, err)
	}
	plan, err := memexplore.OptimizeLayout(kern, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Layout) == 0 {
		t.Error("empty layout")
	}
	tiled, err := memexplore.Tile(kern, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tiled.Depth() != 4 {
		t.Errorf("tiled depth = %d", tiled.Depth())
	}
}

func TestFacadeAggregate(t *testing.T) {
	opts := memexplore.DefaultOptions()
	opts.CacheSizes = []int{32, 64}
	opts.LineSizes = []int{4, 8}
	opts.Assocs = []int{1}
	opts.Tilings = []int{1}
	program, perKernel, err := memexplore.Aggregate(memexplore.MPEGDecoder(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(program) == 0 || len(perKernel) != 9 {
		t.Fatalf("program %d rows, perKernel %d", len(program), len(perKernel))
	}
}

func TestFacadeCatalog(t *testing.T) {
	cat := memexplore.SRAMCatalog()
	if len(cat) != 3 {
		t.Fatalf("catalog %d parts", len(cat))
	}
	p := memexplore.DefaultEnergyParams(cat[0])
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestFacadeExtensions(t *testing.T) {
	kern, err := memexplore.Kernel("compress")
	if err != nil {
		t.Fatal(err)
	}
	// Parser round trip via the facade.
	parsed, err := memexplore.ParseKernel(kern.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != "compress" {
		t.Errorf("parsed name = %q", parsed.Name)
	}
	// Unroll + Interchange.
	un, err := memexplore.Unroll(kern, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(un.Body) != 31*5 {
		t.Errorf("unrolled body = %d refs", len(un.Body))
	}
	if _, err := memexplore.Interchange(kern, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Trace analysis + reuse distance.
	tr, err := memexplore.GenerateTrace(kern, memexplore.SequentialLayout(kern, 0))
	if err != nil {
		t.Fatal(err)
	}
	p := memexplore.AnalyzeTrace(tr)
	if p.References != tr.Len() {
		t.Errorf("profile references = %d", p.References)
	}
	h, err := memexplore.ComputeReuse(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	st, err := memexplore.Simulate(memexplore.NewCacheConfig(64, 8, 8), tr)
	if err != nil {
		t.Fatal(err)
	}
	if h.Misses(8) != st.Misses {
		t.Errorf("reuse prediction %d != simulator %d", h.Misses(8), st.Misses)
	}
	// EDP and parallel exploration.
	opts := memexplore.DefaultOptions()
	opts.CacheSizes = []int{32, 64}
	opts.LineSizes = []int{4, 8}
	opts.Assocs = []int{1}
	opts.Tilings = []int{1}
	ms, err := memexplore.ExploreParallel(kern, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := memexplore.MinEDP(ms); !ok {
		t.Error("no EDP optimum")
	}
	// Warm composition + generic trace evaluation.
	warm, err := memexplore.WarmTrace(memexplore.MPEGDecoder(), 200)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := memexplore.EvaluateTrace(warm, memexplore.NewCacheConfig(256, 8, 2), 1, opts.Energy, false)
	if err != nil {
		t.Fatal(err)
	}
	if wm.Accesses != uint64(warm.Len()) {
		t.Errorf("warm accesses = %d", wm.Accesses)
	}
}

func TestFacadeICacheAndSPM(t *testing.T) {
	kern, err := memexplore.Kernel("fir")
	if err != nil {
		t.Fatal(err)
	}
	gen := memexplore.DefaultCodeGen()
	code, err := memexplore.CodeBytes(kern, gen)
	if err != nil || code <= 0 {
		t.Fatalf("code bytes = %d, %v", code, err)
	}
	itr, err := memexplore.InstructionTrace(kern, gen)
	if err != nil || itr.Len() == 0 {
		t.Fatalf("instruction trace: %d, %v", itr.Len(), err)
	}
	opts := memexplore.DefaultOptions()
	opts.CacheSizes = []int{32, 64, 128}
	opts.LineSizes = []int{8}
	opts.Assocs = []int{1}
	opts.Tilings = []int{1}
	instr, err := memexplore.ExploreICache(kern, gen, opts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := memexplore.Explore(kern, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := memexplore.ExploreJoint(instr, data, 0); !ok {
		t.Error("joint exploration failed")
	}
	// Scratchpad.
	spm := memexplore.DefaultSPMParams(memexplore.SRAMCatalog()[0])
	a, err := memexplore.AssignSPM(kern, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !a.InSPM["h"] {
		t.Errorf("FIR's tap table should be on-chip: %+v", a)
	}
	sms, err := memexplore.ExploreSPM(kern, []int{64, 128, 256}, spm)
	if err != nil || len(sms) != 3 {
		t.Fatalf("SPM explore: %d, %v", len(sms), err)
	}
}
